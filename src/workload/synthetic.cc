#include "workload/synthetic.hh"

#include "common/logging.hh"

namespace boreas
{

SyntheticSource::SyntheticSource(std::string name, WorkloadSpec spec)
    : name_(std::move(name)), spec_(std::move(spec))
{
    boreas_assert(!spec_.phases.empty(),
                  "synthetic source '%s' has no phases", name_.c_str());
}

CoreStimulus
SyntheticSource::stimulus(int core) const
{
    boreas_assert(core == 0, "single-core source asked for core %d",
                  core);
    boreas_assert(run_.has_value(), "stimulus() before reset()");
    return {run_->currentPhase(), true};
}

Rng &
SyntheticSource::noiseRng(int core)
{
    boreas_assert(core == 0, "single-core source asked for core %d",
                  core);
    boreas_assert(run_.has_value(), "noiseRng() before reset()");
    return run_->rng();
}

std::unique_ptr<WorkloadSource>
SyntheticSource::clone() const
{
    return std::make_unique<SyntheticSource>(name_, spec_);
}

std::unique_ptr<WorkloadSource>
SyntheticSource::cloneScaled(double intensity_mult) const
{
    WorkloadSpec scaled = spec_;
    scaled.thermalScale *= intensity_mult;
    return std::make_unique<SyntheticSource>(name_, std::move(scaled));
}

} // namespace boreas
