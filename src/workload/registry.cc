#include "workload/registry.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "workload/adversarial.hh"
#include "workload/mix.hh"
#include "workload/nas.hh"
#include "workload/spec2006.hh"
#include "workload/synthetic.hh"
#include "workload/trace_io.hh"

namespace boreas
{

namespace
{

bool
setError(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/** Non-panicking suite lookup: spec2006 first, then nas. Returns the
 *  canonical family ("spec2006"/"nas") through *family. */
const WorkloadSpec *
lookupProgram(const std::string &name, std::string *family)
{
    for (const WorkloadSpec &spec : spec2006Suite()) {
        if (spec.name == name) {
            if (family)
                *family = "spec2006";
            return &spec;
        }
    }
    for (const WorkloadSpec &spec : nasSuite()) {
        if (spec.name == name) {
            if (family)
                *family = "nas";
            return &spec;
        }
    }
    return nullptr;
}

std::unique_ptr<WorkloadSource>
makeSynthetic(const std::string &rest, std::string *error)
{
    const size_t slash = rest.find('/');
    if (slash == std::string::npos) {
        setError(error, "synthetic: expects <family>/<name>, got '" +
                            rest + "'");
        return nullptr;
    }
    const std::string family = rest.substr(0, slash);
    const std::string name = rest.substr(slash + 1);
    const std::vector<WorkloadSpec> *suite = nullptr;
    if (family == "spec2006")
        suite = &spec2006Suite();
    else if (family == "nas")
        suite = &nasSuite();
    else {
        setError(error, "unknown synthetic family '" + family +
                            "' (expected spec2006 or nas)");
        return nullptr;
    }
    for (const WorkloadSpec &spec : *suite) {
        if (spec.name == name) {
            return std::make_unique<SyntheticSource>(
                "synthetic:" + family + "/" + name, spec);
        }
    }
    setError(error, "no workload '" + name + "' in synthetic:" +
                        family);
    return nullptr;
}

std::unique_ptr<WorkloadSource>
makeMix(const std::string &spec_string, const std::string &rest,
        std::string *error)
{
    std::string programs_part = rest;
    Seconds stagger = 0.0;
    const size_t at = rest.rfind('@');
    if (at != std::string::npos) {
        const std::string option = rest.substr(at + 1);
        constexpr const char *kKey = "stagger=";
        if (option.rfind(kKey, 0) != 0) {
            setError(error, "unknown mix option '@" + option +
                                "' (expected @stagger=<seconds>)");
            return nullptr;
        }
        const std::string value = option.substr(std::strlen(kKey));
        char *end = nullptr;
        stagger = std::strtod(value.c_str(), &end);
        if (value.empty() || end != value.c_str() + value.size() ||
            !(stagger >= 0.0)) {
            setError(error, "bad mix stagger '" + value +
                                "' (expected a nonnegative number of "
                                "seconds)");
            return nullptr;
        }
        programs_part = rest.substr(0, at);
    }

    std::vector<MixProgram> programs;
    size_t pos = 0;
    while (pos <= programs_part.size()) {
        const size_t plus = programs_part.find('+', pos);
        const std::string name = programs_part.substr(
            pos, plus == std::string::npos ? std::string::npos
                                           : plus - pos);
        if (name.empty()) {
            setError(error, "empty program name in mix '" +
                                programs_part + "'");
            return nullptr;
        }
        const WorkloadSpec *spec = lookupProgram(name, nullptr);
        if (!spec) {
            setError(error, "mix program '" + name +
                                "' is not a spec2006 or nas workload");
            return nullptr;
        }
        programs.push_back(MixProgram{
            *spec, stagger * static_cast<double>(programs.size())});
        if (plus == std::string::npos)
            break;
        pos = plus + 1;
    }
    if (programs.empty()) {
        setError(error, "mix: names no programs");
        return nullptr;
    }
    return std::make_unique<MixSource>(spec_string,
                                       std::move(programs));
}

} // namespace

std::unique_ptr<WorkloadSource>
tryMakeWorkloadSource(const std::string &spec_string,
                      std::string *error)
{
    if (spec_string.empty()) {
        setError(error, "empty workload source spec");
        return nullptr;
    }
    const size_t colon = spec_string.find(':');
    if (colon == std::string::npos) {
        // Bare-name shorthand for a suite program.
        std::string family;
        const WorkloadSpec *spec = lookupProgram(spec_string, &family);
        if (!spec) {
            setError(error, "unknown workload '" + spec_string +
                                "' (try synthetic:spec2006/<name>, "
                                "synthetic:nas/<name>, mix:..., "
                                "adversarial:..., trace:<path>)");
            return nullptr;
        }
        return std::make_unique<SyntheticSource>(
            "synthetic:" + family + "/" + spec_string, *spec);
    }

    const std::string scheme = spec_string.substr(0, colon);
    const std::string rest = spec_string.substr(colon + 1);
    if (rest.empty()) {
        setError(error, "source spec '" + spec_string +
                            "' names no target after the scheme");
        return nullptr;
    }
    if (scheme == "synthetic")
        return makeSynthetic(rest, error);
    if (scheme == "mix")
        return makeMix(spec_string, rest, error);
    if (scheme == "adversarial") {
        for (const std::string &scenario : adversarialScenarios()) {
            if (scenario == rest)
                return makeAdversarialSource(rest);
        }
        setError(error, "unknown adversarial scenario '" + rest +
                            "' (expected powervirus, corehop, "
                            "ambientramp or ambientsweep)");
        return nullptr;
    }
    if (scheme == "trace") {
        TraceData data;
        std::string trace_error;
        if (!tryLoadTraceFile(rest, &data, &trace_error)) {
            setError(error, trace_error);
            return nullptr;
        }
        return std::make_unique<TraceSource>(std::move(data));
    }
    setError(error, "unknown source scheme '" + scheme +
                        ":' (expected synthetic, mix, adversarial or "
                        "trace)");
    return nullptr;
}

std::unique_ptr<WorkloadSource>
makeWorkloadSource(const std::string &spec_string)
{
    std::string error;
    auto source = tryMakeWorkloadSource(spec_string, &error);
    if (!source)
        boreas_fatal("bad workload source '%s': %s",
                     spec_string.c_str(), error.c_str());
    return source;
}

std::unique_ptr<WorkloadSource>
makeSyntheticSource(const WorkloadSpec &spec)
{
    return std::make_unique<SyntheticSource>("synthetic:" + spec.name,
                                             spec);
}

const std::string &
workloadSourceGrammar()
{
    static const std::string kGrammar =
        "  synthetic:spec2006/<name>  one SPEC CPU2006 phase program\n"
        "  synthetic:nas/<name>       one NAS program (e.g. nas/cg.B)\n"
        "  mix:<a>+<b>[@stagger=<s>]  co-scheduled per-core programs\n"
        "  adversarial:<scenario>     powervirus|corehop|ambientramp|"
        "ambientsweep\n"
        "  trace:<path>               replay a boreas-trace-v1 file\n"
        "  <name>                     shorthand for a suite program\n";
    return kGrammar;
}

} // namespace boreas
