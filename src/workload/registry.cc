#include "workload/registry.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "workload/adversarial.hh"
#include "workload/mix.hh"
#include "workload/nas.hh"
#include "workload/spec2006.hh"
#include "workload/synthetic.hh"
#include "workload/trace_io.hh"

namespace boreas
{

namespace
{

bool
setError(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/** Non-panicking suite lookup: spec2006 first, then nas. Returns the
 *  canonical family ("spec2006"/"nas") through *family. */
const WorkloadSpec *
lookupProgram(const std::string &name, std::string *family)
{
    for (const WorkloadSpec &spec : spec2006Suite()) {
        if (spec.name == name) {
            if (family)
                *family = "spec2006";
            return &spec;
        }
    }
    for (const WorkloadSpec &spec : nasSuite()) {
        if (spec.name == name) {
            if (family)
                *family = "nas";
            return &spec;
        }
    }
    return nullptr;
}

std::unique_ptr<WorkloadSource>
makeSynthetic(const std::string &rest, std::string *error)
{
    const size_t slash = rest.find('/');
    if (slash == std::string::npos) {
        setError(error, "synthetic: expects <family>/<name>, got '" +
                            rest + "'");
        return nullptr;
    }
    const std::string family = rest.substr(0, slash);
    const std::string name = rest.substr(slash + 1);
    const std::vector<WorkloadSpec> *suite = nullptr;
    if (family == "spec2006")
        suite = &spec2006Suite();
    else if (family == "nas")
        suite = &nasSuite();
    else {
        setError(error, "unknown synthetic family '" + family +
                            "' (expected spec2006 or nas)");
        return nullptr;
    }
    for (const WorkloadSpec &spec : *suite) {
        if (spec.name == name) {
            return std::make_unique<SyntheticSource>(
                "synthetic:" + family + "/" + name, spec);
        }
    }
    setError(error, "no workload '" + name + "' in synthetic:" +
                        family);
    return nullptr;
}

/** Strict nonnegative double parse for mix option values. */
bool
parseNonnegative(const std::string &value, double *out)
{
    if (value.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || !(v >= 0.0))
        return false;
    *out = v;
    return true;
}

std::unique_ptr<WorkloadSource>
makeMix(const std::string &spec_string, const std::string &rest,
        std::string *error)
{
    // Everything before the first '@' names the programs; each
    // following '@key=value' is one option. Options compose and may
    // appear at most once each (rfind('@') used to hard-code exactly
    // one option, so 'mix:a+b@stagger=1@stagger=2' mis-parsed the
    // first option as part of a program name).
    const size_t first_at = rest.find('@');
    const std::string programs_part = rest.substr(0, first_at);
    Seconds stagger = 0.0;
    double scale = 1.0;
    bool have_stagger = false;
    bool have_scale = false;
    size_t opt_pos = first_at;
    while (opt_pos != std::string::npos) {
        const size_t next = rest.find('@', opt_pos + 1);
        const std::string option = rest.substr(
            opt_pos + 1,
            next == std::string::npos ? std::string::npos
                                      : next - opt_pos - 1);
        const size_t eq = option.find('=');
        const std::string key = option.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : option.substr(eq + 1);
        if (option.empty()) {
            setError(error, "empty mix option in '" + rest +
                                "' (dangling '@')");
            return nullptr;
        }
        if (key == "stagger") {
            if (have_stagger) {
                setError(error, "duplicate mix option 'stagger' in '" +
                                    rest + "'");
                return nullptr;
            }
            if (!parseNonnegative(value, &stagger)) {
                setError(error, "bad mix stagger '" + value +
                                    "' (expected a nonnegative number "
                                    "of seconds)");
                return nullptr;
            }
            have_stagger = true;
        } else if (key == "scale") {
            if (have_scale) {
                setError(error, "duplicate mix option 'scale' in '" +
                                    rest + "'");
                return nullptr;
            }
            if (!parseNonnegative(value, &scale) || scale <= 0.0) {
                setError(error, "bad mix scale '" + value +
                                    "' (expected a positive intensity "
                                    "multiplier)");
                return nullptr;
            }
            have_scale = true;
        } else {
            setError(error, "unknown mix option '@" + key +
                                "' (expected @stagger=<seconds> or "
                                "@scale=<mult>)");
            return nullptr;
        }
        opt_pos = next;
    }

    std::vector<MixProgram> programs;
    size_t pos = 0;
    while (pos <= programs_part.size()) {
        const size_t plus = programs_part.find('+', pos);
        const std::string name = programs_part.substr(
            pos, plus == std::string::npos ? std::string::npos
                                           : plus - pos);
        if (name.empty()) {
            setError(error, "empty program name in mix '" +
                                programs_part + "'");
            return nullptr;
        }
        const WorkloadSpec *spec = lookupProgram(name, nullptr);
        if (!spec) {
            setError(error, "mix program '" + name +
                                "' is not a spec2006 or nas workload");
            return nullptr;
        }
        MixProgram program{
            *spec, stagger * static_cast<double>(programs.size())};
        program.spec.thermalScale *= scale;
        programs.push_back(std::move(program));
        if (plus == std::string::npos)
            break;
        pos = plus + 1;
    }
    if (programs.empty()) {
        setError(error, "mix: names no programs");
        return nullptr;
    }
    return std::make_unique<MixSource>(spec_string,
                                       std::move(programs));
}

} // namespace

std::unique_ptr<WorkloadSource>
tryMakeWorkloadSource(const std::string &spec_string,
                      std::string *error)
{
    if (spec_string.empty()) {
        setError(error, "empty workload source spec");
        return nullptr;
    }
    const size_t colon = spec_string.find(':');
    if (colon == std::string::npos) {
        // Bare-name shorthand for a suite program.
        std::string family;
        const WorkloadSpec *spec = lookupProgram(spec_string, &family);
        if (!spec) {
            setError(error, "unknown workload '" + spec_string +
                                "' (try synthetic:spec2006/<name>, "
                                "synthetic:nas/<name>, mix:..., "
                                "adversarial:..., trace:<path>)");
            return nullptr;
        }
        return std::make_unique<SyntheticSource>(
            "synthetic:" + family + "/" + spec_string, *spec);
    }

    const std::string scheme = spec_string.substr(0, colon);
    const std::string rest = spec_string.substr(colon + 1);
    if (rest.empty()) {
        setError(error, "source spec '" + spec_string +
                            "' names no target after the scheme");
        return nullptr;
    }
    if (scheme == "synthetic")
        return makeSynthetic(rest, error);
    if (scheme == "mix")
        return makeMix(spec_string, rest, error);
    if (scheme == "adversarial") {
        for (const std::string &scenario : adversarialScenarios()) {
            if (scenario == rest)
                return makeAdversarialSource(rest);
        }
        setError(error, "unknown adversarial scenario '" + rest +
                            "' (expected powervirus, corehop, "
                            "ambientramp or ambientsweep)");
        return nullptr;
    }
    if (scheme == "trace") {
        TraceData data;
        std::string trace_error;
        if (!tryLoadTraceFile(rest, &data, &trace_error)) {
            setError(error, trace_error);
            return nullptr;
        }
        return std::make_unique<TraceSource>(std::move(data));
    }
    setError(error, "unknown source scheme '" + scheme +
                        ":' (expected synthetic, mix, adversarial or "
                        "trace)");
    return nullptr;
}

std::unique_ptr<WorkloadSource>
makeWorkloadSource(const std::string &spec_string)
{
    std::string error;
    auto source = tryMakeWorkloadSource(spec_string, &error);
    if (!source)
        boreas_fatal("bad workload source '%s': %s",
                     spec_string.c_str(), error.c_str());
    return source;
}

std::unique_ptr<WorkloadSource>
makeSyntheticSource(const WorkloadSpec &spec)
{
    return std::make_unique<SyntheticSource>("synthetic:" + spec.name,
                                             spec);
}

const std::string &
workloadSourceGrammar()
{
    static const std::string kGrammar =
        "  synthetic:spec2006/<name>  one SPEC CPU2006 phase program\n"
        "  synthetic:nas/<name>       one NAS program (e.g. nas/cg.B)\n"
        "  mix:<a>+<b>[@stagger=<s>][@scale=<m>]\n"
        "                             co-scheduled per-core programs\n"
        "  adversarial:<scenario>     powervirus|corehop|ambientramp|"
        "ambientsweep\n"
        "  trace:<path>               replay a boreas-trace-v1 file\n"
        "  <name>                     shorthand for a suite program\n";
    return kGrammar;
}

std::vector<std::string>
splitWorkloadSpecList(const std::string &list)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        out.push_back(list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace boreas
