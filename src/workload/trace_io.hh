/**
 * @file
 * The boreas-trace-v1 binary workload-trace format: record a live
 * run's per-step per-core stimuli and replay them bit-identically.
 *
 * A trace captures, for every pipeline step and die core, the
 * effective PhaseParams the source produced, whether the core was
 * active, and the pre-step snapshot of the core's noise-Rng state.
 * Replaying restores the Rng snapshot before each step, so the
 * pipeline-side draws (intensity residual, core-model activity noise)
 * reproduce the recorded run exactly even though the generator-side
 * draws (dwell jitter, phase selection) are not re-executed. The
 * header also carries the recorded warm-start unit-power vector,
 * because live runs derive it from probe steps a trace cannot re-run.
 *
 * On-disk layout (all fields little-endian):
 *
 *   header   magic[8] = "BORTRCv1", u32 version = 1, u32 numCores,
 *            u32 numSteps, u32 flags (bit 0: warm power present),
 *            f64 dt, u64 seed, u64 payloadChecksum (FNV-1a over the
 *            payload bytes), u32 nameLen, u32 warmCount,
 *            name[nameLen], warm[warmCount] f64
 *   payload  numSteps records, each:
 *              u32 stepIndex, then numCores core records, each:
 *                u8 active, u8 rngHaveSpare, u64 rngState[4],
 *                f64 rngSpare, f64 phase[17] (PhaseParams fields in
 *                declaration order, arch/core_model.hh)
 *
 * The checksum is the same FNV-1a the determinism contract uses
 * (common/hash.hh); like the runHash it compares bit patterns, so it
 * is not portable across endianness — traces are fixed little-endian
 * precisely so the *container* stays portable even though replay
 * equality is only meaningful on matching FP hardware.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/core_model.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "workload/source.hh"

namespace boreas
{

/** Human-readable name of the (only) supported trace format. */
inline constexpr const char *kTraceFormatName = "boreas-trace-v1";

/** Magic bytes opening every trace file. */
inline constexpr char kTraceMagic[8] = {'B', 'O', 'R', 'T',
                                        'R', 'C', 'v', '1'};

/** Supported container version. */
inline constexpr uint32_t kTraceVersion = 1;

/** One core's recorded stimulus for one step. */
struct TraceCoreRecord
{
    bool active = false;
    RngState rng;      ///< noise-Rng snapshot taken *before* the step
    PhaseParams phase; ///< effective params (thermalScale folded in)
};

/** One recorded pipeline step. */
struct TraceStep
{
    uint32_t stepIndex = 0;
    std::vector<TraceCoreRecord> cores;
};

/** A fully decoded trace. */
struct TraceData
{
    std::string sourceName; ///< name of the source that was recorded
    int numCores = 0;
    Seconds dt = 0.0;  ///< step length the run used
    uint64_t seed = 0; ///< seed the recorded run was started with
    /** Recorded warm-start per-unit power; empty if not captured. */
    std::vector<Watts> warmPower;
    std::vector<TraceStep> steps;
    /** FNV-1a over the payload bytes; set by encode/decode. */
    uint64_t payloadChecksum = 0;
};

/** Serialize to boreas-trace-v1 bytes (fills in the checksum). */
std::vector<uint8_t> encodeTrace(TraceData &data);

/**
 * Parse and fully validate boreas-trace-v1 bytes: magic/version/size
 * checks, payload checksum, strictly ascending step indices, positive
 * finite dt, finite phase parameters. Returns false and sets *error
 * (if given) on the first violation; *out is then unspecified.
 */
bool decodeTrace(const std::vector<uint8_t> &bytes, TraceData *out,
                 std::string *error = nullptr);

/** Write a trace file; panics on I/O failure. */
void writeTraceFile(const std::string &path, TraceData &data);

/** Load and validate a trace file; false + *error on any failure. */
bool tryLoadTraceFile(const std::string &path, TraceData *out,
                      std::string *error = nullptr);

/** Load and validate a trace file; panics if unreadable or invalid. */
TraceData loadTraceFile(const std::string &path);

/**
 * Pipeline tap that accumulates a TraceData while a run executes.
 * Install with ThermalPipeline::setTraceRecorder(); the pipeline
 * calls onRunStart()/recordStep() and the caller serializes the
 * result afterwards.
 */
class TraceRecorder
{
  public:
    void onRunStart(std::string source_name, int num_cores, Seconds dt,
                    uint64_t seed, std::vector<Watts> warm_power);

    void recordStep(uint32_t step_index,
                    std::vector<TraceCoreRecord> cores);

    const TraceData &
    data() const
    {
        return data_;
    }

    /** Move the accumulated trace out (recorder becomes empty). */
    TraceData
    takeData()
    {
        TraceData out = std::move(data_);
        data_ = TraceData{};
        return out;
    }

  private:
    TraceData data_;
};

/**
 * Replays a recorded trace as a WorkloadSource. Deterministic by
 * construction: reset() ignores the seed argument (the stream is a
 * pure function of the trace) and each advance() re-synchronizes the
 * per-core noise Rngs from the recorded snapshots. Past the final
 * recorded step the source holds the last stimulus, so replaying a
 * longer horizon degrades gracefully instead of crashing.
 */
class TraceSource final : public WorkloadSource
{
  public:
    explicit TraceSource(TraceData data);
    explicit TraceSource(std::shared_ptr<const TraceData> data);
    /** Replay with every recorded intensity multiplied (used by
     *  cloneScaled(); forfeits the recorded warm power). */
    TraceSource(std::shared_ptr<const TraceData> data,
                double intensity_scale);

    /** Load, validate and wrap a trace file; panics on failure. */
    static std::unique_ptr<TraceSource>
    fromFile(const std::string &path);

    const std::string &
    name() const override
    {
        return name_;
    }

    int
    numCores() const override
    {
        return data_->numCores;
    }

    /** Traces group by payload checksum (content identity). */
    uint64_t
    groupId() const override
    {
        return data_->payloadChecksum;
    }

    void reset(uint64_t seed) override;
    CoreStimulus stimulus(int core) const override;
    Rng &noiseRng(int core) override;
    void advance(Seconds dt) override;

    std::unique_ptr<WorkloadSource> clone() const override;
    std::unique_ptr<WorkloadSource>
    cloneScaled(double intensity_mult) const override;

    /** Recorded warm power — only valid for unscaled replays, since
     *  the recording captured the unscaled workload's probe steps. */
    const std::vector<Watts> *recordedWarmPower() const override;

    uint64_t
    recordedSeed() const
    {
        return data_->seed;
    }

    Seconds
    recordedDt() const
    {
        return data_->dt;
    }

    uint64_t
    checksum() const
    {
        return data_->payloadChecksum;
    }

    int
    numSteps() const
    {
        return static_cast<int>(data_->steps.size());
    }

  private:
    void syncRngs();

    std::shared_ptr<const TraceData> data_;
    std::string name_;
    double intensityScale_ = 1.0;

    size_t index_ = 0;
    std::vector<Rng> rngs_; ///< empty until reset()
};

} // namespace boreas
