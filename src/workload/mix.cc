#include "workload/mix.hh"

#include <cmath>

#include "common/hash.hh"
#include "common/logging.hh"

namespace boreas
{

namespace
{

/** Decorrelates co-scheduled copies of the same program. */
constexpr uint64_t kMixCoreSalt = 0xc2b2ae3d27d4eb4fULL;

/** Start-offset conversion slack: offsets are step multiples, and the
 *  offset/dt division must not flip the step index by one ULP. */
constexpr Seconds kStartEps = 1e-12;

/** First step index at which an offset has elapsed: the smallest s
 *  with s * dt >= offset - kStartEps. */
int64_t
offsetToStartStep(Seconds offset, Seconds dt)
{
    if (offset <= kStartEps)
        return 0;
    return static_cast<int64_t>(std::ceil((offset - kStartEps) / dt));
}

} // namespace

MixSource::MixSource(std::string name, std::vector<MixProgram> programs)
    : name_(std::move(name)), programs_(std::move(programs))
{
    boreas_assert(!programs_.empty(), "mix '%s' has no programs",
                  name_.c_str());
    for (const MixProgram &p : programs_) {
        boreas_assert(!p.spec.phases.empty(),
                      "mix '%s' program '%s' has no phases",
                      name_.c_str(), p.spec.name.c_str());
        boreas_assert(p.startOffset >= 0.0,
                      "mix '%s' negative start offset", name_.c_str());
    }
    Fnv1a hasher;
    hasher.addBytes(name_.data(), name_.size());
    groupId_ = hasher.digest();
}

void
MixSource::reset(uint64_t seed)
{
    stepIndex_ = 0;
    stepLength_ = 0.0;
    startSteps_.assign(programs_.size(), 0);
    runs_.clear();
    runs_.reserve(programs_.size());
    for (size_t i = 0; i < programs_.size(); ++i)
        runs_.emplace_back(programs_[i].spec,
                           seed ^ ((i + 1) * kMixCoreSalt));
}

bool
MixSource::started(int core) const
{
    const Seconds offset = programs_[core].startOffset;
    if (offset <= kStartEps)
        return true;
    // Before the first advance() the step length is unknown, but no
    // time has elapsed either, so a positive offset cannot have run
    // out yet.
    if (stepLength_ <= 0.0)
        return false;
    return stepIndex_ >= startSteps_[core];
}

CoreStimulus
MixSource::stimulus(int core) const
{
    boreas_assert(core >= 0 && core < numCores(), "bad core %d", core);
    boreas_assert(!runs_.empty(), "stimulus() before reset()");
    if (!started(core))
        return {PhaseParams{}, false};
    return {runs_[core].currentPhase(), true};
}

Rng &
MixSource::noiseRng(int core)
{
    boreas_assert(core >= 0 && core < numCores(), "bad core %d", core);
    boreas_assert(!runs_.empty(), "noiseRng() before reset()");
    return runs_[core].rng();
}

void
MixSource::advance(Seconds dt)
{
    boreas_assert(dt > 0.0, "mix '%s' advance by dt=%g", name_.c_str(),
                  dt);
    if (stepLength_ <= 0.0) {
        stepLength_ = dt;
        for (size_t i = 0; i < programs_.size(); ++i)
            startSteps_[i] =
                offsetToStartStep(programs_[i].startOffset, dt);
    } else {
        // Offsets were converted against the first dt; a varying step
        // length would silently invalidate the activation schedule.
        boreas_assert(std::abs(dt - stepLength_) <=
                          1e-12 * stepLength_,
                      "mix '%s' step length changed mid-run "
                      "(%g -> %g)", name_.c_str(), stepLength_, dt);
    }
    // Programs only consume workload time once they have started, so
    // a staggered program begins at its own phase 0 regardless of the
    // offset — and the stagger cannot shift sibling noise streams.
    for (size_t i = 0; i < runs_.size(); ++i) {
        if (started(static_cast<int>(i)))
            runs_[i].advance(dt);
    }
    ++stepIndex_;
}

std::unique_ptr<WorkloadSource>
MixSource::clone() const
{
    return std::make_unique<MixSource>(name_, programs_);
}

std::unique_ptr<WorkloadSource>
MixSource::cloneScaled(double intensity_mult) const
{
    std::vector<MixProgram> scaled = programs_;
    for (MixProgram &p : scaled)
        p.spec.thermalScale *= intensity_mult;
    return std::make_unique<MixSource>(name_, std::move(scaled));
}

} // namespace boreas
