#include "workload/mix.hh"

#include "common/hash.hh"
#include "common/logging.hh"

namespace boreas
{

namespace
{

/** Decorrelates co-scheduled copies of the same program. */
constexpr uint64_t kMixCoreSalt = 0xc2b2ae3d27d4eb4fULL;

/** Start-offset comparison slack: offsets are step multiples, and
 *  repeated dt accumulation must not flip activation by one ULP. */
constexpr Seconds kStartEps = 1e-12;

} // namespace

MixSource::MixSource(std::string name, std::vector<MixProgram> programs)
    : name_(std::move(name)), programs_(std::move(programs))
{
    boreas_assert(!programs_.empty(), "mix '%s' has no programs",
                  name_.c_str());
    for (const MixProgram &p : programs_) {
        boreas_assert(!p.spec.phases.empty(),
                      "mix '%s' program '%s' has no phases",
                      name_.c_str(), p.spec.name.c_str());
        boreas_assert(p.startOffset >= 0.0,
                      "mix '%s' negative start offset", name_.c_str());
    }
    Fnv1a hasher;
    hasher.addBytes(name_.data(), name_.size());
    groupId_ = hasher.digest();
}

void
MixSource::reset(uint64_t seed)
{
    elapsed_ = 0.0;
    runs_.clear();
    runs_.reserve(programs_.size());
    for (size_t i = 0; i < programs_.size(); ++i)
        runs_.emplace_back(programs_[i].spec,
                           seed ^ ((i + 1) * kMixCoreSalt));
}

bool
MixSource::started(int core) const
{
    return elapsed_ >= programs_[core].startOffset - kStartEps;
}

CoreStimulus
MixSource::stimulus(int core) const
{
    boreas_assert(core >= 0 && core < numCores(), "bad core %d", core);
    boreas_assert(!runs_.empty(), "stimulus() before reset()");
    if (!started(core))
        return {PhaseParams{}, false};
    return {runs_[core].currentPhase(), true};
}

Rng &
MixSource::noiseRng(int core)
{
    boreas_assert(core >= 0 && core < numCores(), "bad core %d", core);
    boreas_assert(!runs_.empty(), "noiseRng() before reset()");
    return runs_[core].rng();
}

void
MixSource::advance(Seconds dt)
{
    // Programs only consume workload time once they have started, so
    // a staggered program begins at its own phase 0 regardless of the
    // offset — and the stagger cannot shift sibling noise streams.
    for (size_t i = 0; i < runs_.size(); ++i) {
        if (started(static_cast<int>(i)))
            runs_[i].advance(dt);
    }
    elapsed_ += dt;
}

std::unique_ptr<WorkloadSource>
MixSource::clone() const
{
    return std::make_unique<MixSource>(name_, programs_);
}

std::unique_ptr<WorkloadSource>
MixSource::cloneScaled(double intensity_mult) const
{
    std::vector<MixProgram> scaled = programs_;
    for (MixProgram &p : scaled)
        p.spec.thermalScale *= intensity_mult;
    return std::make_unique<MixSource>(name_, std::move(scaled));
}

} // namespace boreas
