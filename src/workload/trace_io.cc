#include "workload/trace_io.hh"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/hash.hh"
#include "common/logging.hh"

namespace boreas
{

namespace
{

constexpr size_t kHeaderFixedBytes = 56;
constexpr size_t kCoreRecordBytes =
    2 + 4 * sizeof(uint64_t) + sizeof(double) + 17 * sizeof(double);
constexpr uint32_t kFlagWarmPower = 1u << 0;

constexpr uint32_t kMaxCores = 1024;
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxWarmCount = 1u << 20;

/** PhaseParams fields in declaration order (arch/core_model.hh). The
 *  wire format is defined by this list; extend only by bumping the
 *  container version. */
template <typename Fn>
void
forEachPhaseField(PhaseParams &p, Fn &&fn)
{
    fn(p.baseCpi);
    fn(p.fpFraction);
    fn(p.mulFraction);
    fn(p.loadFraction);
    fn(p.storeFraction);
    fn(p.branchFraction);
    fn(p.branchMpki);
    fn(p.l1iMpki);
    fn(p.l1dMpki);
    fn(p.l2Mpki);
    fn(p.l3Mpki);
    fn(p.itlbMpki);
    fn(p.dtlbMpki);
    fn(p.mlp);
    fn(p.activityNoise);
    fn(p.intensityNoise);
    fn(p.intensity);
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putF64(std::vector<uint8_t> &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

/** Bounds-checked little-endian reader over a byte buffer. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<uint8_t> &bytes)
        : bytes_(bytes)
    {
    }

    size_t remaining() const { return bytes_.size() - pos_; }

    bool
    getBytes(void *dst, size_t n)
    {
        if (remaining() < n)
            return false;
        std::memcpy(dst, bytes_.data() + pos_, n);
        pos_ += n;
        return true;
    }

    bool
    getU8(uint8_t *v)
    {
        return getBytes(v, 1);
    }

    bool
    getU32(uint32_t *v)
    {
        uint8_t b[4];
        if (!getBytes(b, 4))
            return false;
        *v = 0;
        for (int i = 0; i < 4; ++i)
            *v |= static_cast<uint32_t>(b[i]) << (8 * i);
        return true;
    }

    bool
    getU64(uint64_t *v)
    {
        uint8_t b[8];
        if (!getBytes(b, 8))
            return false;
        *v = 0;
        for (int i = 0; i < 8; ++i)
            *v |= static_cast<uint64_t>(b[i]) << (8 * i);
        return true;
    }

    bool
    getF64(double *v)
    {
        uint64_t bits;
        if (!getU64(&bits))
            return false;
        std::memcpy(v, &bits, sizeof(*v));
        return true;
    }

  private:
    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

std::vector<uint8_t>
encodePayload(const TraceData &data)
{
    std::vector<uint8_t> payload;
    payload.reserve(data.steps.size() *
                    (4 + static_cast<size_t>(data.numCores) *
                             kCoreRecordBytes));
    for (const TraceStep &step : data.steps) {
        putU32(payload, step.stepIndex);
        boreas_assert(static_cast<int>(step.cores.size()) ==
                          data.numCores,
                      "trace step %u has %zu core records, expected %d",
                      step.stepIndex, step.cores.size(), data.numCores);
        for (const TraceCoreRecord &core : step.cores) {
            payload.push_back(core.active ? 1 : 0);
            payload.push_back(core.rng.haveSpare ? 1 : 0);
            for (uint64_t word : core.rng.s)
                putU64(payload, word);
            putF64(payload, core.rng.spare);
            PhaseParams phase = core.phase;
            forEachPhaseField(phase,
                              [&](double v) { putF64(payload, v); });
        }
    }
    return payload;
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

std::vector<uint8_t>
encodeTrace(TraceData &data)
{
    boreas_assert(data.numCores > 0, "trace has no cores");
    std::vector<uint8_t> payload = encodePayload(data);
    Fnv1a hasher;
    hasher.addBytes(payload.data(), payload.size());
    data.payloadChecksum = hasher.digest();

    std::vector<uint8_t> out;
    out.reserve(kHeaderFixedBytes + data.sourceName.size() +
                data.warmPower.size() * sizeof(double) +
                payload.size());
    // Byte-wise append: GCC 12's -Wrestrict misfires on a char-pointer
    // range insert into a vector<uint8_t> at -O2 (-Werror builds).
    for (char byte : kTraceMagic)
        out.push_back(static_cast<uint8_t>(byte));
    putU32(out, kTraceVersion);
    putU32(out, static_cast<uint32_t>(data.numCores));
    putU32(out, static_cast<uint32_t>(data.steps.size()));
    putU32(out, data.warmPower.empty() ? 0 : kFlagWarmPower);
    putF64(out, data.dt);
    putU64(out, data.seed);
    putU64(out, data.payloadChecksum);
    putU32(out, static_cast<uint32_t>(data.sourceName.size()));
    putU32(out, static_cast<uint32_t>(data.warmPower.size()));
    out.insert(out.end(), data.sourceName.begin(),
               data.sourceName.end());
    for (Watts w : data.warmPower)
        putF64(out, w);
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

bool
decodeTrace(const std::vector<uint8_t> &bytes, TraceData *out,
            std::string *error)
{
    ByteReader reader(bytes);
    char magic[8];
    if (!reader.getBytes(magic, sizeof(magic)))
        return fail(error, "truncated header (no magic)");
    if (std::memcmp(magic, kTraceMagic, sizeof(kTraceMagic)) != 0)
        return fail(error, "bad magic: not a boreas-trace file");

    uint32_t version = 0, num_cores = 0, num_steps = 0, flags = 0;
    uint32_t name_len = 0, warm_count = 0;
    double dt = 0.0;
    uint64_t seed = 0, checksum = 0;
    if (!reader.getU32(&version) || !reader.getU32(&num_cores) ||
        !reader.getU32(&num_steps) || !reader.getU32(&flags) ||
        !reader.getF64(&dt) || !reader.getU64(&seed) ||
        !reader.getU64(&checksum) || !reader.getU32(&name_len) ||
        !reader.getU32(&warm_count)) {
        return fail(error, "truncated header");
    }
    if (version != kTraceVersion) {
        return fail(error, "unsupported version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kTraceVersion) + ")");
    }
    if (num_cores == 0 || num_cores > kMaxCores)
        return fail(error, "implausible core count " +
                               std::to_string(num_cores));
    if (name_len > kMaxNameLen)
        return fail(error, "implausible source-name length");
    if (warm_count > kMaxWarmCount)
        return fail(error, "implausible warm-power count");
    if (!(dt > 0.0) || !std::isfinite(dt))
        return fail(error, "step length dt must be positive and finite");
    const bool has_warm = (flags & kFlagWarmPower) != 0;
    if (has_warm != (warm_count > 0))
        return fail(error, "warm-power flag disagrees with count");

    const size_t step_bytes =
        4 + static_cast<size_t>(num_cores) * kCoreRecordBytes;
    const size_t expect_rest = name_len +
        static_cast<size_t>(warm_count) * sizeof(double) +
        static_cast<size_t>(num_steps) * step_bytes;
    if (reader.remaining() != expect_rest) {
        return fail(error, "size mismatch: " +
                               std::to_string(reader.remaining()) +
                               " bytes after header, expected " +
                               std::to_string(expect_rest));
    }

    TraceData data;
    data.numCores = static_cast<int>(num_cores);
    data.dt = dt;
    data.seed = seed;
    data.sourceName.resize(name_len);
    if (name_len > 0 &&
        !reader.getBytes(data.sourceName.data(), name_len))
        return fail(error, "truncated source name");
    data.warmPower.resize(warm_count);
    for (uint32_t i = 0; i < warm_count; ++i) {
        if (!reader.getF64(&data.warmPower[i]))
            return fail(error, "truncated warm-power vector");
        if (!std::isfinite(data.warmPower[i]))
            return fail(error, "non-finite warm power");
    }

    // Checksum the payload before trusting any of its contents.
    Fnv1a hasher;
    hasher.addBytes(bytes.data() + (bytes.size() - reader.remaining()),
                    reader.remaining());
    if (hasher.digest() != checksum)
        return fail(error, "payload checksum mismatch (corrupt trace)");
    data.payloadChecksum = checksum;

    data.steps.resize(num_steps);
    uint32_t prev_index = 0;
    for (uint32_t s = 0; s < num_steps; ++s) {
        TraceStep &step = data.steps[s];
        if (!reader.getU32(&step.stepIndex))
            return fail(error, "truncated step record");
        if (s > 0 && step.stepIndex <= prev_index) {
            return fail(error,
                        "step indices not strictly ascending at step " +
                            std::to_string(s));
        }
        prev_index = step.stepIndex;
        step.cores.resize(num_cores);
        for (uint32_t c = 0; c < num_cores; ++c) {
            TraceCoreRecord &core = step.cores[c];
            uint8_t active = 0, have_spare = 0;
            if (!reader.getU8(&active) || !reader.getU8(&have_spare))
                return fail(error, "truncated core record");
            if (active > 1 || have_spare > 1)
                return fail(error, "malformed core-record flags");
            core.active = active != 0;
            core.rng.haveSpare = have_spare != 0;
            for (uint64_t &word : core.rng.s) {
                if (!reader.getU64(&word))
                    return fail(error, "truncated rng state");
            }
            if (!reader.getF64(&core.rng.spare))
                return fail(error, "truncated rng state");
            bool params_ok = true;
            forEachPhaseField(core.phase, [&](double &v) {
                if (!reader.getF64(&v) || !std::isfinite(v))
                    params_ok = false;
            });
            if (!params_ok) {
                return fail(error,
                            "truncated or non-finite phase params at "
                            "step " + std::to_string(s));
            }
        }
    }
    boreas_assert(reader.remaining() == 0, "trace reader accounting");
    *out = std::move(data);
    return true;
}

void
writeTraceFile(const std::string &path, TraceData &data)
{
    const std::vector<uint8_t> bytes = encodeTrace(data);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        boreas_fatal("cannot open trace file '%s' for writing",
                     path.c_str());
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        boreas_fatal("short write to trace file '%s'", path.c_str());
}

bool
tryLoadTraceFile(const std::string &path, TraceData *out,
                 std::string *error)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return fail(error, "cannot open trace file '" + path + "'");
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    if (size > 0 &&
        !in.read(reinterpret_cast<char *>(bytes.data()), size))
        return fail(error, "short read from trace file '" + path + "'");
    return decodeTrace(bytes, out, error);
}

TraceData
loadTraceFile(const std::string &path)
{
    TraceData data;
    std::string err;
    if (!tryLoadTraceFile(path, &data, &err))
        boreas_fatal("invalid trace '%s': %s", path.c_str(),
                     err.c_str());
    return data;
}

void
TraceRecorder::onRunStart(std::string source_name, int num_cores,
                          Seconds dt, uint64_t seed,
                          std::vector<Watts> warm_power)
{
    data_ = TraceData{};
    data_.sourceName = std::move(source_name);
    data_.numCores = num_cores;
    data_.dt = dt;
    data_.seed = seed;
    data_.warmPower = std::move(warm_power);
}

void
TraceRecorder::recordStep(uint32_t step_index,
                          std::vector<TraceCoreRecord> cores)
{
    boreas_assert(static_cast<int>(cores.size()) == data_.numCores,
                  "recordStep core count mismatch");
    data_.steps.push_back(TraceStep{step_index, std::move(cores)});
}

TraceSource::TraceSource(TraceData data)
    : TraceSource(std::make_shared<const TraceData>(std::move(data)),
                  1.0)
{
}

TraceSource::TraceSource(std::shared_ptr<const TraceData> data)
    : TraceSource(std::move(data), 1.0)
{
}

TraceSource::TraceSource(std::shared_ptr<const TraceData> data,
                         double intensity_scale)
    : data_(std::move(data)), name_("trace:" + data_->sourceName),
      intensityScale_(intensity_scale)
{
    boreas_assert(data_->numCores > 0, "trace has no cores");
    boreas_assert(!data_->steps.empty(), "trace has no steps");
}

std::unique_ptr<TraceSource>
TraceSource::fromFile(const std::string &path)
{
    return std::make_unique<TraceSource>(loadTraceFile(path));
}

void
TraceSource::reset(uint64_t seed)
{
    (void)seed; // replay is a pure function of the trace contents
    index_ = 0;
    if (rngs_.empty())
        rngs_.assign(static_cast<size_t>(data_->numCores), Rng(0));
    syncRngs();
}

void
TraceSource::syncRngs()
{
    const TraceStep &step = data_->steps[index_];
    for (int c = 0; c < data_->numCores; ++c)
        rngs_[static_cast<size_t>(c)].restoreState(step.cores[c].rng);
}

CoreStimulus
TraceSource::stimulus(int core) const
{
    boreas_assert(core >= 0 && core < data_->numCores, "bad core %d",
                  core);
    boreas_assert(!rngs_.empty(), "stimulus() before reset()");
    const TraceCoreRecord &rec = data_->steps[index_].cores[core];
    CoreStimulus stim{rec.phase, rec.active};
    if (intensityScale_ != 1.0)
        stim.phase.intensity *= intensityScale_;
    return stim;
}

Rng &
TraceSource::noiseRng(int core)
{
    boreas_assert(core >= 0 && core < data_->numCores, "bad core %d",
                  core);
    boreas_assert(!rngs_.empty(), "noiseRng() before reset()");
    return rngs_[static_cast<size_t>(core)];
}

void
TraceSource::advance(Seconds dt)
{
    (void)dt; // one trace record per pipeline step by construction
    boreas_assert(!rngs_.empty(), "advance() before reset()");
    if (index_ + 1 < data_->steps.size())
        ++index_;
    syncRngs();
}

std::unique_ptr<WorkloadSource>
TraceSource::clone() const
{
    return std::make_unique<TraceSource>(data_, intensityScale_);
}

std::unique_ptr<WorkloadSource>
TraceSource::cloneScaled(double intensity_mult) const
{
    return std::make_unique<TraceSource>(data_,
                                         intensityScale_ * intensity_mult);
}

const std::vector<Watts> *
TraceSource::recordedWarmPower() const
{
    if (data_->warmPower.empty() || intensityScale_ != 1.0)
        return nullptr;
    return &data_->warmPower;
}

} // namespace boreas
