/**
 * @file
 * The single-core phase-program source: a WorkloadSpec run behind the
 * WorkloadSource interface. This is the adapter that lets every
 * legacy spec-based experiment ride the generator API with a
 * bit-identical stimulus stream (the wrapped WorkloadRun is seeded
 * and advanced exactly as the pre-subsystem pipeline did).
 */

#pragma once

#include <optional>

#include "workload/source.hh"
#include "workload/workload.hh"

namespace boreas
{

/** One WorkloadSpec phase program driving one core. */
class SyntheticSource final : public WorkloadSource
{
  public:
    /**
     * @param name registry name shown in manifests (may differ from
     *        spec.name, which feeds the run's seed derivation)
     * @param spec the phase program, copied and owned
     */
    SyntheticSource(std::string name, WorkloadSpec spec);

    const std::string &
    name() const override
    {
        return name_;
    }

    int
    numCores() const override
    {
        return 1;
    }

    uint64_t
    groupId() const override
    {
        return spec_.seedSalt;
    }

    void
    reset(uint64_t seed) override
    {
        run_.emplace(spec_, seed);
    }

    CoreStimulus stimulus(int core) const override;
    Rng &noiseRng(int core) override;

    void
    advance(Seconds dt) override
    {
        run_->advance(dt);
    }

    std::unique_ptr<WorkloadSource> clone() const override;
    std::unique_ptr<WorkloadSource>
    cloneScaled(double intensity_mult) const override;

    const WorkloadSpec &
    spec() const
    {
        return spec_;
    }

  private:
    std::string name_;
    WorkloadSpec spec_;
    /** Live run; empty until reset(). Never copied across clones:
     *  it points at this instance's spec_. */
    std::optional<WorkloadRun> run_;
};

} // namespace boreas
