/**
 * @file
 * The NAS Parallel Benchmarks workload family (synthetic:nas).
 *
 * Phase programs for ten NPB kernels/pseudo-apps, calibrated against
 * the CPA framework's measured instruction counts (Lupones et al.,
 * instr_60s_500ms.mako: instructions executed in a 60 s run): each
 * program's base CPI is solved so its dwell-weighted mean CPI at the
 * calibration clock reproduces the measured instructions-per-second.
 * The memory/branch/FP texture of each phase encodes the kernel's
 * published character (CG sparse-irregular, EP compute-pure, IS
 * streaming-sort, ...), so the counters the pipeline sees carry the
 * right per-benchmark signature, not just the right rate.
 */

#pragma once

#include <vector>

#include "workload/workload.hh"

namespace boreas
{

/** Clock (GHz) the NAS instruction-rate calibration is anchored at. */
constexpr GHz kNasReferenceFrequency = 3.0;

/** The ten modeled NPB programs ("bt.B", "cg.B", ..., class suffix
 *  matching the CPA measurement used for calibration). */
const std::vector<WorkloadSpec> &nasSuite();

/** Lookup by name (e.g. "cg.B"); panics if absent. */
const WorkloadSpec &findNasWorkload(const std::string &name);

/**
 * The CPA-measured instruction rate (instructions/second) the program
 * is calibrated to at kNasReferenceFrequency. Exposed for the
 * calibration regression test.
 */
double nasTargetInstructionRate(const std::string &name);

} // namespace boreas
