#include "workload/source.hh"

namespace boreas
{

// Out-of-line so the vtable has one home translation unit.
WorkloadSource::~WorkloadSource() = default;

} // namespace boreas
