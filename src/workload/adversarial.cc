#include "workload/adversarial.hh"

#include <cmath>

#include "common/hash.hh"
#include "common/logging.hh"
#include "workload/mix.hh"
#include "workload/workload.hh"

namespace boreas
{

namespace
{

constexpr uint64_t kAdversarialCoreSalt = 0x9ddfea08eb382d69ULL;

uint64_t
nameHash(const std::string &name)
{
    Fnv1a hasher;
    hasher.addBytes(name.data(), name.size());
    return hasher.digest();
}

/**
 * The power-virus phase program: near-peak IPC with every execution
 * cluster lit, alternating with a short cooldown so the burst edge
 * recurs throughout the trace. Zero duration jitter keeps co-running
 * copies switching in lockstep (the synchronized worst case).
 */
WorkloadSpec
powerVirusSpec()
{
    WorkloadSpec spec;
    spec.name = "powervirus";
    spec.phases = {
        {{.baseCpi = 0.3, .fpFraction = 0.45, .mulFraction = 0.08,
          .loadFraction = 0.28, .storeFraction = 0.12,
          .branchFraction = 0.05, .branchMpki = 0.3, .l1dMpki = 2,
          .l2Mpki = 0.3, .l3Mpki = 0.05, .activityNoise = 0.01,
          .intensity = 1.6},
         0.6e-3, 0.0},
        {{.baseCpi = 1.2, .fpFraction = 0.05, .loadFraction = 0.30,
          .storeFraction = 0.10, .branchFraction = 0.10,
          .branchMpki = 2.0, .l1dMpki = 12, .l2Mpki = 4, .l3Mpki = 1.5,
          .activityNoise = 0.01, .intensity = 0.5},
         0.5e-3, 0.0},
    };
    spec.pattern = PhasePattern::Cyclic;
    spec.thermalScale = 1.8;
    spec.seedSalt = 201;
    return spec;
}

/** The die-wide uniform soak the ambient scenarios modulate. */
WorkloadSpec
soakSpec()
{
    WorkloadSpec spec;
    spec.name = "ambientsoak";
    spec.phases = {
        {{.baseCpi = 0.6, .fpFraction = 0.30, .loadFraction = 0.28,
          .storeFraction = 0.11, .branchFraction = 0.08,
          .branchMpki = 2.0, .l1dMpki = 6, .l2Mpki = 1.5, .l3Mpki = 0.4,
          .activityNoise = 0.01, .intensityNoise = 0.02,
          .intensity = 1.0},
         10e-3, 0.05},
    };
    spec.pattern = PhasePattern::Cyclic;
    spec.thermalScale = 1.1;
    spec.seedSalt = 202;
    return spec;
}

/**
 * A power-virus hotspot that migrates to the next core every
 * `hopPeriod`: only one core is active at a time, so no per-site
 * sensor accumulates the history a threshold controller leans on.
 */
class CoreHopSource final : public WorkloadSource
{
  public:
    /** Restricts the copy-for-clone constructor to clone()/cloneScaled(). */
    struct CloneTag
    {
    };

    CoreHopSource()
        : name_("adversarial:corehop"), groupId_(nameHash(name_)),
          virus_(powerVirusSpec())
    {
    }

    CoreHopSource(const CoreHopSource &other, CloneTag)
        : name_(other.name_), groupId_(other.groupId_),
          virus_(other.virus_)
    {
    }

    const std::string &
    name() const override
    {
        return name_;
    }

    int
    numCores() const override
    {
        return kCores;
    }

    uint64_t
    groupId() const override
    {
        return groupId_;
    }

    void
    reset(uint64_t seed) override
    {
        elapsed_ = 0.0;
        runs_.clear();
        runs_.reserve(kCores);
        for (int i = 0; i < kCores; ++i)
            runs_.emplace_back(
                virus_, seed ^ ((static_cast<uint64_t>(i) + 1) *
                                kAdversarialCoreSalt));
    }

    CoreStimulus
    stimulus(int core) const override
    {
        boreas_assert(core >= 0 && core < kCores, "bad core %d", core);
        boreas_assert(!runs_.empty(), "stimulus() before reset()");
        if (core != hotCore())
            return {PhaseParams{}, false};
        return {runs_[core].currentPhase(), true};
    }

    Rng &
    noiseRng(int core) override
    {
        boreas_assert(core >= 0 && core < kCores, "bad core %d", core);
        boreas_assert(!runs_.empty(), "noiseRng() before reset()");
        return runs_[core].rng();
    }

    void
    advance(Seconds dt) override
    {
        // Only the hot core's program consumes workload time; the
        // virus resumes where it left off when the hotspot returns.
        runs_[hotCore()].advance(dt);
        elapsed_ += dt;
    }

    std::unique_ptr<WorkloadSource>
    clone() const override
    {
        return std::make_unique<CoreHopSource>(*this, CloneTag{});
    }

    std::unique_ptr<WorkloadSource>
    cloneScaled(double intensity_mult) const override
    {
        auto copy = std::make_unique<CoreHopSource>(*this, CloneTag{});
        copy->virus_.thermalScale *= intensity_mult;
        return copy;
    }

  private:
    int
    hotCore() const
    {
        return static_cast<int>(elapsed_ / kHopPeriod) % kCores;
    }

    static constexpr int kCores = 4;
    static constexpr Seconds kHopPeriod = 3e-3;

    std::string name_;
    uint64_t groupId_ = 0;
    WorkloadSpec virus_;
    std::vector<WorkloadRun> runs_; ///< empty until reset()
    Seconds elapsed_ = 0.0;
};

/**
 * The die-wide soak with a deterministic intensity envelope: a linear
 * ramp (ambient/cooling drift) or a sinusoidal sweep. All cores run
 * the soak program; the envelope multiplies each stimulus' intensity.
 */
class ModulatedSoakSource final : public WorkloadSource
{
  public:
    enum class Envelope
    {
        Ramp, ///< low -> high linearly over kRampTime, then holds
        Sweep ///< sinusoid between low and high, period kSweepPeriod
    };

    explicit ModulatedSoakSource(Envelope envelope)
        : name_(envelope == Envelope::Ramp ? "adversarial:ambientramp"
                                           : "adversarial:ambientsweep"),
          groupId_(nameHash(name_)), envelope_(envelope),
          soak_(soakSpec())
    {
    }

    const std::string &
    name() const override
    {
        return name_;
    }

    int
    numCores() const override
    {
        return kCores;
    }

    uint64_t
    groupId() const override
    {
        return groupId_;
    }

    void
    reset(uint64_t seed) override
    {
        elapsed_ = 0.0;
        runs_.clear();
        runs_.reserve(kCores);
        for (int i = 0; i < kCores; ++i)
            runs_.emplace_back(
                soak_, seed ^ ((static_cast<uint64_t>(i) + 1) *
                               kAdversarialCoreSalt));
    }

    CoreStimulus
    stimulus(int core) const override
    {
        boreas_assert(core >= 0 && core < kCores, "bad core %d", core);
        boreas_assert(!runs_.empty(), "stimulus() before reset()");
        PhaseParams phase = runs_[core].currentPhase();
        phase.intensity *= envelopeValue();
        return {phase, true};
    }

    Rng &
    noiseRng(int core) override
    {
        boreas_assert(core >= 0 && core < kCores, "bad core %d", core);
        boreas_assert(!runs_.empty(), "noiseRng() before reset()");
        return runs_[core].rng();
    }

    void
    advance(Seconds dt) override
    {
        for (WorkloadRun &run : runs_)
            run.advance(dt);
        elapsed_ += dt;
    }

    std::unique_ptr<WorkloadSource>
    clone() const override
    {
        return std::make_unique<ModulatedSoakSource>(envelope_);
    }

    std::unique_ptr<WorkloadSource>
    cloneScaled(double intensity_mult) const override
    {
        auto copy = std::make_unique<ModulatedSoakSource>(envelope_);
        copy->soak_.thermalScale *= intensity_mult;
        return copy;
    }

  private:
    double
    envelopeValue() const
    {
        if (envelope_ == Envelope::Ramp) {
            const double x = std::min(1.0, elapsed_ / kRampTime);
            return kLow + (kHigh - kLow) * x;
        }
        const double mid = 0.5 * (kLow + kHigh);
        const double amp = 0.5 * (kHigh - kLow);
        return mid + amp * std::sin(2.0 * M_PI * elapsed_ /
                                    kSweepPeriod);
    }

    static constexpr int kCores = 4;
    static constexpr double kLow = 0.6;
    static constexpr double kHigh = 1.35;
    /** Ramp spans most of a 150-step (12 ms) trace. */
    static constexpr Seconds kRampTime = 9e-3;
    static constexpr Seconds kSweepPeriod = 6e-3;

    std::string name_;
    uint64_t groupId_ = 0;
    Envelope envelope_;
    WorkloadSpec soak_;
    std::vector<WorkloadRun> runs_; ///< empty until reset()
    Seconds elapsed_ = 0.0;
};

} // namespace

std::unique_ptr<WorkloadSource>
makeAdversarialSource(const std::string &scenario)
{
    if (scenario == "powervirus") {
        std::vector<MixProgram> programs(4, MixProgram{powerVirusSpec(),
                                                       0.0});
        return std::make_unique<MixSource>("adversarial:powervirus",
                                           std::move(programs));
    }
    if (scenario == "corehop")
        return std::make_unique<CoreHopSource>();
    if (scenario == "ambientramp")
        return std::make_unique<ModulatedSoakSource>(
            ModulatedSoakSource::Envelope::Ramp);
    if (scenario == "ambientsweep")
        return std::make_unique<ModulatedSoakSource>(
            ModulatedSoakSource::Envelope::Sweep);
    boreas_fatal("unknown adversarial scenario '%s' (expected "
                 "powervirus|corehop|ambientramp|ambientsweep)",
                 scenario.c_str());
}

const std::vector<std::string> &
adversarialScenarios()
{
    static const std::vector<std::string> kScenarios = {
        "powervirus", "corehop", "ambientramp", "ambientsweep"};
    return kScenarios;
}

} // namespace boreas
