/**
 * @file
 * Workload models: phase programs that drive the interval core model.
 *
 * SPEC CPU2006 binaries are proprietary and unavailable here, so each of
 * the paper's 27 workloads is modeled as a *phase program*: a set of
 * statistical phases (PhaseParams) with durations and a sequencing
 * pattern. What Boreas needs from a workload is the telemetry texture it
 * induces — per-interval counter values, their correlation with power, and
 * the speed/shape of power transients — all of which the phase program
 * controls. See DESIGN.md for the substitution rationale.
 */

#pragma once

#include <string>
#include <vector>

#include "arch/core_model.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace boreas
{

/** One phase of a workload with its dwell time. */
struct WorkloadPhase
{
    PhaseParams params;
    Seconds meanDuration = 2e-3;   ///< average dwell before switching
    double durationJitter = 0.3;   ///< relative uniform jitter on dwell
};

/** How phases follow each other. */
enum class PhasePattern
{
    Cyclic,  ///< phases repeat in order (loop-nest style programs)
    Random   ///< next phase drawn uniformly (irregular/pointer codes)
};

/** A complete workload description. */
struct WorkloadSpec
{
    std::string name;
    std::vector<WorkloadPhase> phases;
    PhasePattern pattern = PhasePattern::Cyclic;

    /**
     * Workload-wide dynamic-energy calibration multiplier (applied on top
     * of each phase's intensity). This stands in for the per-binary
     * switching-activity differences a McPAT run would produce, and is
     * calibrated so the workload's peak-severity-vs-frequency profile
     * (Fig. 2) lands at its documented safe operating point.
     */
    double thermalScale = 1.0;

    /** True if the workload belongs to the paper's test set (Table III). */
    bool testSet = false;

    /** Decorrelates this workload's noise streams from other workloads. */
    uint64_t seedSalt = 0;
};

/**
 * A running instance of a workload: tracks the current phase and produces
 * the effective PhaseParams for each telemetry step. Deterministic given
 * (spec, seed).
 */
class WorkloadRun
{
  public:
    WorkloadRun(const WorkloadSpec &spec, uint64_t seed);

    const WorkloadSpec &spec() const { return *spec_; }

    /** Index of the phase active right now. */
    int phaseIndex() const { return phaseIdx_; }

    /**
     * Phase parameters for the current step, with the workload's
     * thermalScale folded into the intensity.
     */
    PhaseParams currentPhase() const;

    /** Noise stream for the core model, private to this run. */
    Rng &rng() { return rng_; }

    /** Advance workload time by dt, switching phases as dwell expires. */
    void advance(Seconds dt);

  private:
    void scheduleDwell();

    const WorkloadSpec *spec_;
    Rng rng_;
    int phaseIdx_ = 0;
    Seconds dwellLeft_ = 0.0;
};

} // namespace boreas
