#include "workload/spec2006.hh"

#include <map>

#include "common/logging.hh"

namespace boreas
{

namespace
{

/** Shorthand: a phase with a dwell time. */
WorkloadPhase
ph(PhaseParams p, Seconds dwell, double jitter = 0.3)
{
    return {p, dwell, jitter};
}

/**
 * Design-time oracle targets (GHz). These encode the Fig. 2 distribution:
 * two workloads pinned at the 3.75 GHz global limit, a majority at
 * 4.25 GHz (the paper's "majority ... 13% lower" when clamped to 3.75),
 * and a 4.75 GHz tail (the paper's worst-case reduction), with gromacs
 * and cactusADM explicitly safe at 4.75 GHz per Secs. III-D and IV.
 */
const std::map<std::string, GHz> kDesignOracle = {
    {"povray", 3.75},    {"namd", 3.75},
    {"hmmer", 4.00},     {"libquantum", 4.00}, {"lbm", 4.00},
    {"calculix", 4.00},  {"wrf", 4.00},        {"leslie3d", 4.00},
    {"milc", 4.25},      {"bwaves", 4.25},     {"gobmk", 4.25},
    {"sjeng", 4.25},     {"perlbench", 4.25},  {"tonto", 4.25},
    {"zeusmp", 4.25},    {"sphinx3", 4.25},    {"gamess", 4.25},
    {"GemsFDTD", 4.25},  {"h264ref", 4.25},
    {"soplex", 4.50},    {"gcc", 4.50},        {"astar", 4.50},
    {"mcf", 4.75},       {"bzip2", 4.50},      {"omnetpp", 4.50},
    {"gromacs", 4.75},   {"cactusADM", 4.75},
};

/**
 * Calibrated per-workload dynamic-energy scales. Produced by
 * tools/calibrate (binary search on peak severity at the design oracle
 * frequency); regenerate after changing the thermal or power models.
 */
const std::map<std::string, double> kThermalScale = {
    {"milc", 1.1558},      {"bwaves", 1.3191},   {"soplex", 1.2704},
    {"gobmk", 1.2249},     {"sjeng", 1.3423},    {"leslie3d", 1.4504},
    {"gcc", 2.1763},       {"calculix", 1.0565}, {"perlbench", 1.3928},
    {"astar", 1.4522},     {"tonto", 0.8218},    {"zeusmp", 1.4244},
    {"wrf", 1.3386},       {"lbm", 3.1217},      {"mcf", 2.4500},
    {"sphinx3", 1.3682},   {"povray", 1.0556},   {"libquantum", 3.9998},
    {"namd", 0.9313},      {"gromacs", 0.4456},  {"cactusADM", 0.8914},
    {"omnetpp", 2.7432},   {"GemsFDTD", 1.3525}, {"h264ref", 1.1470},
    {"bzip2", 1.3061},     {"hmmer", 0.8654},    {"gamess", 0.6678},
};

/** The Table III test-set membership. */
bool
isTestWorkload(const std::string &name)
{
    return name == "cactusADM" || name == "omnetpp" ||
           name == "GemsFDTD" || name == "h264ref" || name == "bzip2" ||
           name == "hmmer" || name == "gamess";
}

std::vector<WorkloadSpec>
buildSuite()
{
    std::vector<WorkloadSpec> suite;
    auto add = [&](std::string name, std::vector<WorkloadPhase> phases,
                   PhasePattern pattern = PhasePattern::Cyclic) {
        WorkloadSpec spec;
        spec.name = std::move(name);
        spec.phases = std::move(phases);
        spec.pattern = pattern;
        spec.thermalScale = kThermalScale.at(spec.name);
        spec.testSet = isTestWorkload(spec.name);
        spec.seedSalt = suite.size() + 1;
        suite.push_back(std::move(spec));
    };

    // ---------------- training set (Table III) ----------------

    // milc: FP lattice QCD; streaming memory with periodic compute.
    add("milc", {
        ph({.baseCpi = 1.0, .fpFraction = 0.40, .loadFraction = 0.32,
            .storeFraction = 0.14, .branchFraction = 0.05,
            .branchMpki = 1.0, .l1dMpki = 18, .l2Mpki = 7, .l3Mpki = 3.0,
            .dtlbMpki = 2.0, .mlp = 3.0, .intensity = 0.95}, 2.5e-3),
        ph({.baseCpi = 0.6, .fpFraction = 0.45, .loadFraction = 0.25,
            .storeFraction = 0.10, .branchFraction = 0.05,
            .branchMpki = 0.8, .l1dMpki = 6, .l2Mpki = 1.5, .l3Mpki = 0.4,
            .intensity = 1.15}, 1.5e-3),
    });

    // bwaves: FP blast-wave CFD; long streaming phases, prefetch friendly.
    add("bwaves", {
        ph({.baseCpi = 0.9, .fpFraction = 0.45, .loadFraction = 0.34,
            .storeFraction = 0.12, .branchFraction = 0.04,
            .branchMpki = 0.6, .l1dMpki = 15, .l2Mpki = 7, .l3Mpki = 3.0,
            .dtlbMpki = 1.5, .mlp = 3.5, .intensity = 1.0}, 3.0e-3),
        ph({.baseCpi = 0.7, .fpFraction = 0.48, .loadFraction = 0.30,
            .storeFraction = 0.10, .branchFraction = 0.04,
            .branchMpki = 0.5, .l1dMpki = 9, .l2Mpki = 3, .l3Mpki = 1.0,
            .mlp = 3.0, .intensity = 1.1}, 2.0e-3),
    });

    // soplex: sparse LP solver; irregular memory, moderate FP.
    add("soplex", {
        ph({.baseCpi = 1.0, .fpFraction = 0.25, .loadFraction = 0.33,
            .storeFraction = 0.10, .branchFraction = 0.12,
            .branchMpki = 5.0, .l1dMpki = 15, .l2Mpki = 6, .l3Mpki = 2.5,
            .dtlbMpki = 3.0, .mlp = 1.8, .intensity = 0.95}, 2.0e-3),
        ph({.baseCpi = 0.6, .fpFraction = 0.30, .loadFraction = 0.26,
            .storeFraction = 0.08, .branchFraction = 0.10,
            .branchMpki = 3.0, .l1dMpki = 5, .l2Mpki = 1.0, .l3Mpki = 0.3,
            .intensity = 1.05}, 1.2e-3),
    }, PhasePattern::Random);

    // gobmk: Go AI; very branchy integer code.
    add("gobmk", {
        ph({.baseCpi = 0.7, .fpFraction = 0.01, .loadFraction = 0.26,
            .storeFraction = 0.12, .branchFraction = 0.20,
            .branchMpki = 12.0, .l1iMpki = 4, .l1dMpki = 6, .l2Mpki = 1.2,
            .l3Mpki = 0.3, .itlbMpki = 0.6, .intensity = 1.0}, 1.5e-3),
        ph({.baseCpi = 0.6, .fpFraction = 0.01, .loadFraction = 0.24,
            .storeFraction = 0.10, .branchFraction = 0.22,
            .branchMpki = 9.0, .l1iMpki = 3, .l1dMpki = 4, .l2Mpki = 0.8,
            .l3Mpki = 0.2, .intensity = 1.08}, 1.0e-3),
    }, PhasePattern::Random);

    // sjeng: chess engine; steady branchy integer, no fast power spikes
    // (the paper's slow-heating case study in Sec. III-D).
    add("sjeng", {
        ph({.baseCpi = 0.65, .fpFraction = 0.01, .loadFraction = 0.25,
            .storeFraction = 0.11, .branchFraction = 0.18,
            .branchMpki = 9.0, .l1iMpki = 2, .l1dMpki = 5, .l2Mpki = 1.0,
            .l3Mpki = 0.25, .activityNoise = 0.015, .intensity = 1.0},
           6.0e-3, 0.1),
    });

    // leslie3d: FP stencil; regular memory, moderately hot.
    add("leslie3d", {
        ph({.baseCpi = 0.8, .fpFraction = 0.40, .loadFraction = 0.32,
            .storeFraction = 0.13, .branchFraction = 0.04,
            .branchMpki = 0.8, .l1dMpki = 12, .l2Mpki = 5, .l3Mpki = 2.0,
            .mlp = 3.0, .intensity = 1.05}, 2.5e-3),
        ph({.baseCpi = 0.6, .fpFraction = 0.44, .loadFraction = 0.28,
            .storeFraction = 0.11, .branchFraction = 0.04,
            .branchMpki = 0.6, .l1dMpki = 6, .l2Mpki = 2, .l3Mpki = 0.6,
            .intensity = 1.15}, 1.5e-3),
    });

    // gcc: compiler; icache pressure, irregular, moderate power.
    add("gcc", {
        ph({.baseCpi = 0.7, .fpFraction = 0.01, .loadFraction = 0.28,
            .storeFraction = 0.14, .branchFraction = 0.20,
            .branchMpki = 7.0, .l1iMpki = 15, .l1dMpki = 12, .l2Mpki = 3.0,
            .l3Mpki = 1.0, .itlbMpki = 2.0, .dtlbMpki = 2.5,
            .intensity = 0.92}, 1.2e-3),
        ph({.baseCpi = 0.9, .fpFraction = 0.01, .loadFraction = 0.30,
            .storeFraction = 0.15, .branchFraction = 0.18,
            .branchMpki = 5.0, .l1iMpki = 10, .l1dMpki = 16, .l2Mpki = 5.0,
            .l3Mpki = 1.8, .itlbMpki = 1.5, .dtlbMpki = 3.0,
            .intensity = 0.85}, 1.8e-3),
    }, PhasePattern::Random);

    // calculix: FP structural mechanics; compute-dense solver.
    add("calculix", {
        ph({.baseCpi = 0.5, .fpFraction = 0.40, .loadFraction = 0.26,
            .storeFraction = 0.09, .branchFraction = 0.06,
            .branchMpki = 1.5, .l1dMpki = 4, .l2Mpki = 0.8, .l3Mpki = 0.2,
            .intensity = 1.15}, 3.0e-3),
        ph({.baseCpi = 0.8, .fpFraction = 0.30, .loadFraction = 0.30,
            .storeFraction = 0.12, .branchFraction = 0.08,
            .branchMpki = 3.0, .l1dMpki = 10, .l2Mpki = 3, .l3Mpki = 1.0,
            .intensity = 0.9}, 1.5e-3),
    });

    // perlbench: interpreter; branchy, icache-heavy, high activity.
    add("perlbench", {
        ph({.baseCpi = 0.55, .fpFraction = 0.01, .loadFraction = 0.28,
            .storeFraction = 0.14, .branchFraction = 0.21,
            .branchMpki = 6.0, .l1iMpki = 10, .l1dMpki = 6, .l2Mpki = 1.0,
            .l3Mpki = 0.2, .itlbMpki = 1.5, .intensity = 1.05}, 2.0e-3),
        ph({.baseCpi = 0.65, .fpFraction = 0.01, .loadFraction = 0.30,
            .storeFraction = 0.15, .branchFraction = 0.19,
            .branchMpki = 8.0, .l1iMpki = 12, .l1dMpki = 8, .l2Mpki = 1.5,
            .l3Mpki = 0.4, .intensity = 0.95}, 1.2e-3),
    }, PhasePattern::Random);

    // astar: path-finding; pointer-heavy memory with moderate compute.
    add("astar", {
        ph({.baseCpi = 0.9, .fpFraction = 0.02, .loadFraction = 0.32,
            .storeFraction = 0.10, .branchFraction = 0.16,
            .branchMpki = 8.0, .l1dMpki = 15, .l2Mpki = 5, .l3Mpki = 1.5,
            .dtlbMpki = 3.0, .mlp = 1.5, .intensity = 0.9}, 2.0e-3),
        ph({.baseCpi = 0.7, .fpFraction = 0.02, .loadFraction = 0.28,
            .storeFraction = 0.10, .branchFraction = 0.18,
            .branchMpki = 6.0, .l1dMpki = 8, .l2Mpki = 2, .l3Mpki = 0.6,
            .intensity = 1.0}, 1.5e-3),
    }, PhasePattern::Random);

    // tonto: quantum chemistry; FP compute with small working set.
    add("tonto", {
        ph({.baseCpi = 0.6, .fpFraction = 0.35, .loadFraction = 0.27,
            .storeFraction = 0.11, .branchFraction = 0.08,
            .branchMpki = 2.0, .l1dMpki = 5, .l2Mpki = 1.0, .l3Mpki = 0.3,
            .intensity = 1.05}, 2.5e-3),
        ph({.baseCpi = 0.5, .fpFraction = 0.40, .loadFraction = 0.25,
            .storeFraction = 0.10, .branchFraction = 0.07,
            .branchMpki = 1.5, .l1dMpki = 3, .l2Mpki = 0.6, .l3Mpki = 0.15,
            .intensity = 1.12}, 1.5e-3),
    });

    // zeusmp: FP CFD; moderately hot steady compute.
    add("zeusmp", {
        ph({.baseCpi = 0.7, .fpFraction = 0.38, .loadFraction = 0.30,
            .storeFraction = 0.12, .branchFraction = 0.04,
            .branchMpki = 0.8, .l1dMpki = 8, .l2Mpki = 3, .l3Mpki = 1.0,
            .mlp = 2.5, .intensity = 1.05}, 3.0e-3, 0.2),
    });

    // wrf: weather model; mixed FP compute and memory phases.
    add("wrf", {
        ph({.baseCpi = 0.75, .fpFraction = 0.35, .loadFraction = 0.30,
            .storeFraction = 0.12, .branchFraction = 0.07,
            .branchMpki = 2.0, .l1dMpki = 9, .l2Mpki = 3, .l3Mpki = 1.0,
            .intensity = 1.05}, 2.0e-3),
        ph({.baseCpi = 0.55, .fpFraction = 0.42, .loadFraction = 0.26,
            .storeFraction = 0.10, .branchFraction = 0.05,
            .branchMpki = 1.0, .l1dMpki = 4, .l2Mpki = 1.0, .l3Mpki = 0.3,
            .intensity = 1.18}, 1.0e-3),
    });

    // lbm: lattice-Boltzmann; extreme streaming bandwidth, steady.
    add("lbm", {
        ph({.baseCpi = 0.9, .fpFraction = 0.40, .loadFraction = 0.34,
            .storeFraction = 0.16, .branchFraction = 0.02,
            .branchMpki = 0.3, .l1dMpki = 25, .l2Mpki = 10, .l3Mpki = 4.5,
            .dtlbMpki = 2.5, .mlp = 4.0, .activityNoise = 0.015,
            .intensity = 1.05}, 6.0e-3, 0.1),
    });

    // mcf: pointer-chasing; very memory bound, low power.
    add("mcf", {
        ph({.baseCpi = 2.2, .fpFraction = 0.01, .loadFraction = 0.35,
            .storeFraction = 0.09, .branchFraction = 0.17,
            .branchMpki = 10.0, .l1dMpki = 40, .l2Mpki = 15, .l3Mpki = 6.0,
            .dtlbMpki = 8.0, .mlp = 1.2, .intensity = 1.4}, 3.0e-3),
        ph({.baseCpi = 1.4, .fpFraction = 0.01, .loadFraction = 0.32,
            .storeFraction = 0.10, .branchFraction = 0.18,
            .branchMpki = 8.0, .l1dMpki = 25, .l2Mpki = 9, .l3Mpki = 3.5,
            .dtlbMpki = 5.0, .mlp = 1.4, .intensity = 1.5}, 1.5e-3),
    }, PhasePattern::Random);

    // sphinx3: speech recognition; FP with streaming scoring loops.
    add("sphinx3", {
        ph({.baseCpi = 0.8, .fpFraction = 0.30, .loadFraction = 0.31,
            .storeFraction = 0.10, .branchFraction = 0.09,
            .branchMpki = 3.0, .l1dMpki = 10, .l2Mpki = 4, .l3Mpki = 1.5,
            .mlp = 2.5, .intensity = 1.0}, 2.0e-3),
        ph({.baseCpi = 0.6, .fpFraction = 0.35, .loadFraction = 0.28,
            .storeFraction = 0.09, .branchFraction = 0.08,
            .branchMpki = 2.0, .l1dMpki = 5, .l2Mpki = 1.5, .l3Mpki = 0.4,
            .intensity = 1.1}, 1.2e-3),
    });

    // povray: ray tracer; very high-IPC FP compute, one of the two
    // workloads whose oracle point IS the 3.75 GHz global limit.
    add("povray", {
        ph({.baseCpi = 0.45, .fpFraction = 0.35, .loadFraction = 0.27,
            .storeFraction = 0.09, .branchFraction = 0.12,
            .branchMpki = 4.0, .l1dMpki = 2, .l2Mpki = 0.3, .l3Mpki = 0.05,
            .intensity = 1.25}, 2.5e-3),
        ph({.baseCpi = 0.5, .fpFraction = 0.30, .loadFraction = 0.28,
            .storeFraction = 0.10, .branchFraction = 0.13,
            .branchMpki = 5.0, .l1dMpki = 3, .l2Mpki = 0.5, .l3Mpki = 0.1,
            .intensity = 1.15}, 1.5e-3),
    });

    // libquantum: quantum simulation; pure streaming over a large vector,
    // steady high LSU/cache power (uniform heating, Sec. III-D).
    add("libquantum", {
        ph({.baseCpi = 1.0, .fpFraction = 0.02, .loadFraction = 0.33,
            .storeFraction = 0.16, .branchFraction = 0.13,
            .branchMpki = 1.0, .l1dMpki = 30, .l2Mpki = 12, .l3Mpki = 5.0,
            .dtlbMpki = 3.0, .mlp = 4.0, .activityNoise = 0.01,
            .intensity = 1.1}, 8.0e-3, 0.05),
    });

    // namd: molecular dynamics; dense FP inner loops, sustained heat;
    // the other workload pinned at the 3.75 GHz global limit.
    add("namd", {
        ph({.baseCpi = 0.5, .fpFraction = 0.45, .loadFraction = 0.26,
            .storeFraction = 0.08, .branchFraction = 0.06,
            .branchMpki = 1.0, .l1dMpki = 3, .l2Mpki = 0.5, .l3Mpki = 0.1,
            .activityNoise = 0.02, .intensity = 1.25}, 4.0e-3, 0.15),
    });

    // gromacs: molecular dynamics with aggressive short FP bursts —
    // the paper's fast-hotspot case study (Sec. III-D, Fig. 4a).
    add("gromacs", {
        ph({.baseCpi = 0.42, .fpFraction = 0.50, .loadFraction = 0.24,
            .storeFraction = 0.08, .branchFraction = 0.05,
            .branchMpki = 1.0, .l1dMpki = 3, .l2Mpki = 0.5, .l3Mpki = 0.1,
            .activityNoise = 0.05, .intensity = 1.55}, 0.45e-3, 0.4),
        ph({.baseCpi = 1.1, .fpFraction = 0.15, .loadFraction = 0.32,
            .storeFraction = 0.12, .branchFraction = 0.08,
            .branchMpki = 2.0, .l1dMpki = 14, .l2Mpki = 6, .l3Mpki = 2.0,
            .mlp = 2.5, .intensity = 0.6}, 0.8e-3, 0.4),
    });

    // ---------------- test set (Table III) ----------------

    // cactusADM: FP stencil over a large grid; memory bound and cool —
    // safely runs at 4.75 GHz (Sec. III-D).
    add("cactusADM", {
        ph({.baseCpi = 1.0, .fpFraction = 0.42, .loadFraction = 0.32,
            .storeFraction = 0.13, .branchFraction = 0.02,
            .branchMpki = 0.3, .l1dMpki = 14, .l2Mpki = 6, .l3Mpki = 2.5,
            .dtlbMpki = 2.0, .mlp = 3.0, .intensity = 0.95}, 4.0e-3, 0.2),
        ph({.baseCpi = 0.8, .fpFraction = 0.45, .loadFraction = 0.30,
            .storeFraction = 0.12, .branchFraction = 0.02,
            .branchMpki = 0.3, .l1dMpki = 8, .l2Mpki = 3, .l3Mpki = 1.0,
            .mlp = 3.0, .intensity = 1.0}, 2.0e-3),
    });

    // omnetpp: discrete-event simulation; pointer-chasing, cool.
    add("omnetpp", {
        ph({.baseCpi = 1.5, .fpFraction = 0.02, .loadFraction = 0.33,
            .storeFraction = 0.12, .branchFraction = 0.18,
            .branchMpki = 9.0, .l1dMpki = 20, .l2Mpki = 8, .l3Mpki = 3.0,
            .dtlbMpki = 5.0, .mlp = 1.3, .intensity = 0.88}, 2.5e-3),
        ph({.baseCpi = 1.0, .fpFraction = 0.02, .loadFraction = 0.30,
            .storeFraction = 0.12, .branchFraction = 0.20,
            .branchMpki = 7.0, .l1dMpki = 12, .l2Mpki = 4, .l3Mpki = 1.5,
            .dtlbMpki = 3.0, .mlp = 1.5, .intensity = 0.95}, 1.5e-3),
    }, PhasePattern::Random);

    // GemsFDTD: FP electromagnetic solver; streaming with compute bursts.
    add("GemsFDTD", {
        ph({.baseCpi = 0.9, .fpFraction = 0.40, .loadFraction = 0.32,
            .storeFraction = 0.13, .branchFraction = 0.03,
            .branchMpki = 0.5, .l1dMpki = 15, .l2Mpki = 6, .l3Mpki = 2.5,
            .mlp = 3.0, .intensity = 1.0}, 2.5e-3),
        ph({.baseCpi = 0.65, .fpFraction = 0.44, .loadFraction = 0.28,
            .storeFraction = 0.11, .branchFraction = 0.03,
            .branchMpki = 0.4, .l1dMpki = 7, .l2Mpki = 2, .l3Mpki = 0.6,
            .intensity = 1.1}, 1.2e-3),
    });

    // h264ref: video encoder; integer SIMD-ish bursts per macroblock row.
    add("h264ref", {
        ph({.baseCpi = 0.5, .fpFraction = 0.05, .mulFraction = 0.06,
            .loadFraction = 0.30, .storeFraction = 0.12,
            .branchFraction = 0.12, .branchMpki = 4.0, .l1dMpki = 4,
            .l2Mpki = 0.8, .l3Mpki = 0.2, .intensity = 1.12}, 0.9e-3, 0.35),
        ph({.baseCpi = 0.7, .fpFraction = 0.03, .mulFraction = 0.03,
            .loadFraction = 0.32, .storeFraction = 0.13,
            .branchFraction = 0.14, .branchMpki = 6.0, .l1dMpki = 8,
            .l2Mpki = 2.0, .l3Mpki = 0.6, .intensity = 0.9}, 1.1e-3, 0.35),
    });

    // bzip2: compression; alternating compress/decompress phases with
    // clear activity swings — Boreas' best case (Fig. 6, +9.6%).
    add("bzip2", {
        ph({.baseCpi = 0.6, .fpFraction = 0.01, .loadFraction = 0.29,
            .storeFraction = 0.13, .branchFraction = 0.16,
            .branchMpki = 7.0, .l1dMpki = 8, .l2Mpki = 2.0, .l3Mpki = 0.5,
            .intensity = 1.05}, 1.4e-3, 0.35),
        ph({.baseCpi = 0.85, .fpFraction = 0.01, .loadFraction = 0.32,
            .storeFraction = 0.14, .branchFraction = 0.14,
            .branchMpki = 5.0, .l1dMpki = 14, .l2Mpki = 4.0, .l3Mpki = 1.2,
            .dtlbMpki = 2.0, .mlp = 1.8, .intensity = 0.82}, 1.6e-3, 0.35),
    });

    // hmmer: HMM sequence search; extremely steady high-IPC integer code.
    add("hmmer", {
        ph({.baseCpi = 0.4, .fpFraction = 0.02, .mulFraction = 0.03,
            .loadFraction = 0.30, .storeFraction = 0.12,
            .branchFraction = 0.10, .branchMpki = 1.0, .l1dMpki = 3,
            .l2Mpki = 0.4, .l3Mpki = 0.1, .activityNoise = 0.01,
            .intensity = 1.15}, 8.0e-3, 0.05),
    });

    // gamess: quantum chemistry; steady FP with occasional integral
    // bursts (Fig. 4b case study).
    add("gamess", {
        ph({.baseCpi = 0.5, .fpFraction = 0.38, .loadFraction = 0.27,
            .storeFraction = 0.10, .branchFraction = 0.08,
            .branchMpki = 2.0, .l1dMpki = 3, .l2Mpki = 0.5, .l3Mpki = 0.1,
            .intensity = 1.1}, 3.0e-3, 0.2),
        ph({.baseCpi = 0.45, .fpFraction = 0.42, .loadFraction = 0.25,
            .storeFraction = 0.09, .branchFraction = 0.07,
            .branchMpki = 1.5, .l1dMpki = 2, .l2Mpki = 0.3, .l3Mpki = 0.05,
            .intensity = 1.2}, 0.8e-3, 0.3),
    });

    boreas_assert(suite.size() == 27, "expected 27 workloads, got %zu",
                  suite.size());
    return suite;
}

} // namespace

const std::vector<WorkloadSpec> &
spec2006Suite()
{
    static const std::vector<WorkloadSpec> suite = buildSuite();
    return suite;
}

std::vector<const WorkloadSpec *>
trainWorkloads()
{
    std::vector<const WorkloadSpec *> out;
    for (const auto &w : spec2006Suite())
        if (!w.testSet)
            out.push_back(&w);
    return out;
}

std::vector<const WorkloadSpec *>
testWorkloads()
{
    std::vector<const WorkloadSpec *> out;
    for (const auto &w : spec2006Suite())
        if (w.testSet)
            out.push_back(&w);
    return out;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const auto &w : spec2006Suite())
        if (w.name == name)
            return w;
    boreas_fatal("unknown workload '%s'", name.c_str());
}

GHz
designOracleFrequency(const std::string &name)
{
    auto it = kDesignOracle.find(name);
    boreas_assert(it != kDesignOracle.end(), "no design oracle for '%s'",
                  name.c_str());
    return it->second;
}

} // namespace boreas
