#include "workload/workload.hh"

#include <functional>

#include "common/logging.hh"

namespace boreas
{

WorkloadRun::WorkloadRun(const WorkloadSpec &spec, uint64_t seed)
    : spec_(&spec),
      rng_(seed ^ (spec.seedSalt * 0x9e3779b97f4a7c15ULL) ^
           std::hash<std::string>{}(spec.name))
{
    boreas_assert(!spec.phases.empty(), "workload '%s' has no phases",
                  spec.name.c_str());
    phaseIdx_ = 0;
    scheduleDwell();
}

PhaseParams
WorkloadRun::currentPhase() const
{
    PhaseParams p = spec_->phases[phaseIdx_].params;
    p.intensity *= spec_->thermalScale;
    return p;
}

void
WorkloadRun::advance(Seconds dt)
{
    dwellLeft_ -= dt;
    while (dwellLeft_ <= 0.0) {
        const int n = static_cast<int>(spec_->phases.size());
        if (spec_->pattern == PhasePattern::Cyclic || n == 1) {
            phaseIdx_ = (phaseIdx_ + 1) % n;
        } else {
            // Random: jump to a *different* phase. Allowing repeats
            // would give some seeds multi-millisecond single-phase
            // realizations, making short traces unrepresentative.
            phaseIdx_ = (phaseIdx_ + 1 + rng_.uniformInt(0, n - 2)) % n;
        }
        scheduleDwell();
    }
}

void
WorkloadRun::scheduleDwell()
{
    const WorkloadPhase &ph = spec_->phases[phaseIdx_];
    const double jitter = std::min(0.95, std::max(0.0, ph.durationJitter));
    const double factor = rng_.uniform(1.0 - jitter, 1.0 + jitter);
    dwellLeft_ += ph.meanDuration * factor;
}

} // namespace boreas
