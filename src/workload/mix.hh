/**
 * @file
 * The mix: combinator — heterogeneous per-core phase programs
 * co-scheduled on the multi-core die, with optional staggered starts.
 *
 * Program i drives die core i. A program whose start offset has not
 * elapsed yet reports an inactive stimulus (the core idles: leakage
 * and residual clocking only), modelling jobs arriving at different
 * times — the CPA-style interference regime where one core's heat
 * soaks into a neighbour that later turbos.
 */

#pragma once

#include "workload/source.hh"
#include "workload/workload.hh"

namespace boreas
{

/** One co-scheduled program and when it starts. */
struct MixProgram
{
    WorkloadSpec spec;
    Seconds startOffset = 0.0;
};

/** Co-scheduled per-core phase programs behind one source. */
class MixSource final : public WorkloadSource
{
  public:
    MixSource(std::string name, std::vector<MixProgram> programs);

    const std::string &
    name() const override
    {
        return name_;
    }

    int
    numCores() const override
    {
        return static_cast<int>(programs_.size());
    }

    uint64_t
    groupId() const override
    {
        return groupId_;
    }

    void reset(uint64_t seed) override;
    CoreStimulus stimulus(int core) const override;
    Rng &noiseRng(int core) override;
    void advance(Seconds dt) override;

    std::unique_ptr<WorkloadSource> clone() const override;
    std::unique_ptr<WorkloadSource>
    cloneScaled(double intensity_mult) const override;

    const std::vector<MixProgram> &
    programs() const
    {
        return programs_;
    }

  private:
    bool started(int core) const;

    std::string name_;
    std::vector<MixProgram> programs_;
    uint64_t groupId_ = 0;

    std::vector<WorkloadRun> runs_; ///< empty until reset()
    /**
     * Workload time is counted in whole steps, not accumulated
     * seconds: `elapsed += dt` drifts by ULPs over millions of steps
     * and can flip a stagger activation one step early or late.
     * Start offsets convert to step indices once, on the first
     * advance() (when dt is known), so activation is exact forever.
     */
    int64_t stepIndex_ = 0;
    Seconds stepLength_ = 0.0; ///< 0 until the first advance()
    std::vector<int64_t> startSteps_; ///< parallel to programs_
};

} // namespace boreas
