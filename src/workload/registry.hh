/**
 * @file
 * The workload-source registry: every stimulus the pipeline can run
 * is named by a source spec string and constructed here.
 *
 * Grammar (DESIGN.md §10):
 *
 *   synthetic:spec2006/<name>   one SPEC CPU2006 phase program
 *   synthetic:nas/<name>        one NAS program (e.g. nas/cg.B)
 *   mix:<a>+<b>+...[@stagger=<seconds>][@scale=<mult>]
 *                               co-schedule the named programs on
 *                               cores 0..n-1; program i starts at
 *                               i*stagger (names resolve in spec2006
 *                               first, then nas). Options compose in
 *                               any order, each at most once; scale
 *                               multiplies every program's intensity
 *   adversarial:<scenario>      powervirus | corehop | ambientramp |
 *                               ambientsweep
 *   trace:<path>                replay a boreas-trace-v1 file
 *   <name>                      bare-name shorthand for a spec2006 or
 *                               nas program
 *
 * Code outside src/workload must obtain workloads through this
 * registry (or the suite accessors) rather than constructing
 * WorkloadSpec literals — enforced by the workload-spec-construction
 * lint rule (tools/lint/linter.cc).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workload/source.hh"
#include "workload/workload.hh"

namespace boreas
{

/**
 * Build the source named by `spec_string`. Returns nullptr and sets
 * *error (if given) when the string does not parse or names nothing.
 */
std::unique_ptr<WorkloadSource>
tryMakeWorkloadSource(const std::string &spec_string,
                      std::string *error = nullptr);

/** Like tryMakeWorkloadSource(), but panics with the parse error. */
std::unique_ptr<WorkloadSource>
makeWorkloadSource(const std::string &spec_string);

/**
 * Wrap one already-resolved phase program (e.g. a spec2006 suite
 * entry) as a single-core source named "synthetic:<spec.name>".
 */
std::unique_ptr<WorkloadSource>
makeSyntheticSource(const WorkloadSpec &spec);

/** One-line-per-form usage text for bench --workload help. */
const std::string &workloadSourceGrammar();

/**
 * Split a comma-separated list of source specs ("bzip2,mix:a+b,...")
 * into its entries, preserving order. Empty entries (leading,
 * trailing or doubled commas) are kept so callers can report them —
 * the fleet layer maps each entry to a die and must not silently
 * renumber dies around a typo.
 */
std::vector<std::string>
splitWorkloadSpecList(const std::string &list);

} // namespace boreas
