#include "ml/gbt.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/logging.hh"
#include "common/rng.hh"

namespace boreas
{

double
GBTTree::predict(const double *x) const
{
    int i = 0;
    while (nodes[i].feature >= 0) {
        i = (x[nodes[i].feature] <= nodes[i].threshold)
            ? nodes[i].left : nodes[i].right;
    }
    return nodes[i].value;
}

int
GBTTree::depth() const
{
    // Iterative depth over the explicit child links.
    int max_depth = 0;
    std::vector<std::pair<int, int>> stack{{0, 0}};
    while (!stack.empty()) {
        auto [idx, d] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, d);
        if (nodes[idx].feature >= 0) {
            stack.push_back({nodes[idx].left, d + 1});
            stack.push_back({nodes[idx].right, d + 1});
        }
    }
    return max_depth;
}

namespace
{

/** Quantile-binned view of the training features. */
struct BinnedData
{
    size_t numRows = 0;
    size_t numFeatures = 0;
    std::vector<uint16_t> codes;            ///< row-major bin codes
    std::vector<std::vector<double>> cuts;  ///< per-feature upper edges

    uint16_t code(size_t r, size_t f) const
    {
        return codes[r * numFeatures + f];
    }
};

BinnedData
binFeatures(const Dataset &data, int max_bins)
{
    BinnedData b;
    b.numRows = data.numRows();
    b.numFeatures = data.numFeatures();
    b.cuts.resize(b.numFeatures);
    b.codes.assign(b.numRows * b.numFeatures, 0);

    std::vector<double> col(b.numRows);
    for (size_t f = 0; f < b.numFeatures; ++f) {
        for (size_t r = 0; r < b.numRows; ++r)
            col[r] = data.x(r, f);
        std::vector<double> sorted = col;
        std::sort(sorted.begin(), sorted.end());

        // Quantile cut candidates; deduplicated. The last bin is
        // implicit (> last cut).
        std::vector<double> cuts;
        for (int q = 1; q < max_bins; ++q) {
            const size_t idx = std::min(
                b.numRows - 1, q * b.numRows / max_bins);
            const double v = sorted[idx];
            if (cuts.empty() || v > cuts.back())
                cuts.push_back(v);
        }
        b.cuts[f] = cuts;

        for (size_t r = 0; r < b.numRows; ++r) {
            const auto it = std::lower_bound(cuts.begin(), cuts.end(),
                                             col[r]);
            b.codes[r * b.numFeatures + f] =
                static_cast<uint16_t>(it - cuts.begin());
        }
    }
    return b;
}

struct BinStats
{
    double g = 0.0;
    double h = 0.0;
};

double
leafWeight(double g, double h, double lambda)
{
    return -g / (h + lambda);
}

double
similarity(double g, double h, double lambda)
{
    return g * g / (h + lambda);
}

} // namespace

void
GBTRegressor::train(const Dataset &data, const GBTParams &params)
{
    boreas_assert(data.numRows() > 0, "empty training set");
    boreas_assert(params.maxDepth >= 1 && params.nEstimators >= 1,
                  "bad GBT params");
    params_ = params;
    numFeatures_ = data.numFeatures();
    trees_.clear();

    const size_t n = data.numRows();
    base_ = data.targetMean();

    const BinnedData binned = binFeatures(data, params.maxBins);

    std::vector<double> pred(n, base_);
    std::vector<double> grad(n, 0.0);
    Rng rng(params.seed);

    std::vector<int> all_rows(n);
    for (size_t i = 0; i < n; ++i)
        all_rows[i] = static_cast<int>(i);

    for (int t = 0; t < params.nEstimators; ++t) {
        for (size_t i = 0; i < n; ++i)
            grad[i] = pred[i] - data.y(i);

        // Optional row subsampling per boosting round.
        std::vector<int> rows;
        if (params.subsample >= 1.0) {
            rows = all_rows;
        } else {
            rows.reserve(static_cast<size_t>(n * params.subsample) + 1);
            for (size_t i = 0; i < n; ++i)
                if (rng.uniform() < params.subsample)
                    rows.push_back(static_cast<int>(i));
            if (rows.empty())
                rows = all_rows;
        }

        GBTTree tree;
        // Recursive level-wise growth over index ranges of `rows`.
        struct Task
        {
            int node;
            size_t begin, end;
            int depth;
        };
        tree.nodes.push_back({});
        std::vector<Task> stack{{0, 0, rows.size(), 0}};

        while (!stack.empty()) {
            const Task task = stack.back();
            stack.pop_back();

            double gsum = 0.0;
            const double hsum =
                static_cast<double>(task.end - task.begin);
            for (size_t k = task.begin; k < task.end; ++k)
                gsum += grad[rows[k]];

            GBTNode &placeholder = tree.nodes[task.node];
            placeholder.value = leafWeight(gsum, hsum, params.lambda);

            if (task.depth >= params.maxDepth ||
                hsum < 2.0 * params.minChildWeight) {
                continue; // stays a leaf
            }

            // Histograms per feature.
            const size_t nf = binned.numFeatures;
            std::vector<std::vector<BinStats>> hist(nf);
            for (size_t f = 0; f < nf; ++f)
                hist[f].assign(binned.cuts[f].size() + 1, BinStats{});
            for (size_t k = task.begin; k < task.end; ++k) {
                const int r = rows[k];
                const double g = grad[r];
                const uint16_t *codes =
                    binned.codes.data() + static_cast<size_t>(r) * nf;
                for (size_t f = 0; f < nf; ++f) {
                    BinStats &bs = hist[f][codes[f]];
                    bs.g += g;
                    bs.h += 1.0;
                }
            }

            // Best split scan.
            const double parent_sim =
                similarity(gsum, hsum, params.lambda);
            double best_gain = 0.0;
            int best_feature = -1;
            int best_bin = -1;
            for (size_t f = 0; f < nf; ++f) {
                double gl = 0.0, hl = 0.0;
                const size_t nbins = hist[f].size();
                for (size_t bin = 0; bin + 1 < nbins; ++bin) {
                    gl += hist[f][bin].g;
                    hl += hist[f][bin].h;
                    const double gr = gsum - gl;
                    const double hr = hsum - hl;
                    if (hl < params.minChildWeight ||
                        hr < params.minChildWeight)
                        continue;
                    const double gain = 0.5 *
                        (similarity(gl, hl, params.lambda) +
                         similarity(gr, hr, params.lambda) -
                         parent_sim) - params.gamma;
                    if (gain > best_gain) {
                        best_gain = gain;
                        best_feature = static_cast<int>(f);
                        best_bin = static_cast<int>(bin);
                    }
                }
            }

            if (best_feature < 0)
                continue; // no profitable split: leaf

            // Partition the row range by the winning bin.
            const auto mid_it = std::partition(
                rows.begin() + task.begin, rows.begin() + task.end,
                [&](int r) {
                    return binned.code(r, best_feature) <=
                        static_cast<uint16_t>(best_bin);
                });
            const size_t mid = static_cast<size_t>(
                mid_it - rows.begin());
            if (mid == task.begin || mid == task.end)
                continue; // degenerate partition: leaf

            const int left = static_cast<int>(tree.nodes.size());
            tree.nodes.push_back({});
            const int right = static_cast<int>(tree.nodes.size());
            tree.nodes.push_back({});

            GBTNode &node = tree.nodes[task.node];
            node.feature = best_feature;
            node.threshold = binned.cuts[best_feature][best_bin];
            node.left = left;
            node.right = right;
            node.gain = best_gain;

            stack.push_back({left, task.begin, mid, task.depth + 1});
            stack.push_back({right, mid, task.end, task.depth + 1});
        }

        // Update running predictions with the shrunk tree output.
        for (size_t i = 0; i < n; ++i)
            pred[i] += params.learningRate * tree.predict(data.row(i));

        trees_.push_back(std::move(tree));
    }
}

double
GBTRegressor::predict(const double *x) const
{
    double acc = base_;
    for (const auto &tree : trees_)
        acc += params_.learningRate * tree.predict(x);
    return acc;
}

double
GBTRegressor::predict(const std::vector<double> &x) const
{
    boreas_assert(x.size() == numFeatures_,
                  "feature vector size %zu != %zu", x.size(),
                  numFeatures_);
    return predict(x.data());
}

std::vector<double>
GBTRegressor::predictAll(const Dataset &data) const
{
    boreas_assert(data.numFeatures() == numFeatures_,
                  "dataset feature count mismatch");
    std::vector<double> out(data.numRows());
    for (size_t r = 0; r < data.numRows(); ++r)
        out[r] = predict(data.row(r));
    return out;
}

double
GBTRegressor::mse(const Dataset &data) const
{
    boreas_assert(data.numRows() > 0, "empty eval set");
    const auto preds = predictAll(data);
    double acc = 0.0;
    for (size_t r = 0; r < data.numRows(); ++r) {
        const double d = preds[r] - data.y(r);
        acc += d * d;
    }
    return acc / static_cast<double>(data.numRows());
}

std::vector<double>
GBTRegressor::featureImportance() const
{
    std::vector<double> gains(numFeatures_, 0.0);
    for (const auto &tree : trees_)
        for (const auto &node : tree.nodes)
            if (node.feature >= 0)
                gains[node.feature] += node.gain;
    double total = 0.0;
    for (double g : gains)
        total += g;
    if (total > 0.0)
        for (double &g : gains)
            g /= total;
    return gains;
}

size_t
GBTRegressor::modelBytes() const
{
    // Sec. V-E accounting: full trees, one 32-bit value per node.
    const size_t nodes_per_tree =
        (static_cast<size_t>(1) << (params_.maxDepth + 1)) - 1;
    return trees_.size() * nodes_per_tree * 4;
}

size_t
GBTRegressor::comparisonsPerPrediction() const
{
    return trees_.size() * static_cast<size_t>(params_.maxDepth);
}

size_t
GBTRegressor::additionsPerPrediction() const
{
    return trees_.empty() ? 0 : trees_.size() - 1;
}

void
GBTRegressor::save(std::ostream &os) const
{
    // Full round-trip precision: thresholds decide tree paths, so any
    // rounding can flip predictions.
    os.precision(17);
    os << "boreas-gbt 1\n";
    os << params_.learningRate << " " << params_.gamma << " "
       << params_.maxDepth << " " << params_.nEstimators << " "
       << params_.lambda << "\n";
    os << base_ << " " << numFeatures_ << " " << trees_.size() << "\n";
    for (const auto &tree : trees_) {
        os << tree.nodes.size() << "\n";
        for (const auto &n : tree.nodes) {
            os << n.feature << " " << n.threshold << " " << n.left << " "
               << n.right << " " << n.value << " " << n.gain << "\n";
        }
    }
}

void
GBTRegressor::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    boreas_assert(magic == "boreas-gbt" && version == 1,
                  "bad GBT model header");
    is >> params_.learningRate >> params_.gamma >> params_.maxDepth >>
        params_.nEstimators >> params_.lambda;
    size_t num_trees = 0;
    is >> base_ >> numFeatures_ >> num_trees;
    boreas_assert(is.good(), "truncated GBT model");
    trees_.assign(num_trees, {});
    for (auto &tree : trees_) {
        size_t num_nodes = 0;
        is >> num_nodes;
        tree.nodes.assign(num_nodes, {});
        for (auto &n : tree.nodes) {
            is >> n.feature >> n.threshold >> n.left >> n.right >>
                n.value >> n.gain;
        }
        boreas_assert(is.good(), "truncated GBT model tree");
    }
}

} // namespace boreas
