#include "ml/gbt.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/checked.hh"
#include "common/iofmt.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "ml/gbt_flat.hh"
#include "obs/trace.hh"

namespace boreas
{

double
GBTTree::predict(const double *x) const
{
    int i = 0;
    while (nodes[i].feature >= 0) {
        i = (x[nodes[i].feature] <= nodes[i].threshold)
            ? nodes[i].left : nodes[i].right;
    }
    return nodes[i].value;
}

int
GBTTree::depth() const
{
    // Iterative depth over the explicit child links.
    int max_depth = 0;
    std::vector<std::pair<int, int>> stack{{0, 0}};
    while (!stack.empty()) {
        auto [idx, d] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, d);
        if (nodes[idx].feature >= 0) {
            stack.push_back({nodes[idx].left, d + 1});
            stack.push_back({nodes[idx].right, d + 1});
        }
    }
    return max_depth;
}

namespace
{

/** Quantile-binned view of the training features. */
struct BinnedData
{
    size_t numRows = 0;
    size_t numFeatures = 0;
    std::vector<uint16_t> codes;            ///< row-major bin codes
    std::vector<std::vector<double>> cuts;  ///< per-feature upper edges

    uint16_t code(size_t r, size_t f) const
    {
        return codes[r * numFeatures + f];
    }
};

BinnedData
binFeatures(const Dataset &data, int max_bins)
{
    obs::ScopedTimer timer("gbt.bin");
    BinnedData b;
    b.numRows = data.numRows();
    b.numFeatures = data.numFeatures();
    b.cuts.resize(b.numFeatures);
    b.codes.assign(b.numRows * b.numFeatures, 0);

    // Features are independent: fan the binning out over feature
    // chunks. The column/sorted scratch buffers live per chunk and are
    // reused across that chunk's features instead of reallocated.
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(b.numFeatures), 1,
        [&](int64_t f_lo, int64_t f_hi) {
            std::vector<double> col(b.numRows);
            std::vector<double> sorted(b.numRows);
            for (int64_t f = f_lo; f < f_hi; ++f) {
                for (size_t r = 0; r < b.numRows; ++r)
                    col[r] = data.x(r, f);
                sorted.assign(col.begin(), col.end());
                std::sort(sorted.begin(), sorted.end());

                // Quantile cut candidates; deduplicated. The last bin
                // is implicit (> last cut).
                std::vector<double> cuts;
                for (int q = 1; q < max_bins; ++q) {
                    const size_t idx = std::min(
                        b.numRows - 1, q * b.numRows / max_bins);
                    const double v = sorted[idx];
                    if (cuts.empty() || v > cuts.back())
                        cuts.push_back(v);
                }

                for (size_t r = 0; r < b.numRows; ++r) {
                    const auto it = std::lower_bound(
                        cuts.begin(), cuts.end(), col[r]);
                    b.codes[r * b.numFeatures + f] =
                        static_cast<uint16_t>(it - cuts.begin());
                }
                b.cuts[f] = std::move(cuts);
            }
        });
    return b;
}

struct BinStats
{
    double g = 0.0;
    double h = 0.0;
};

double
leafWeight(double g, double h, double lambda)
{
    return -g / (h + lambda);
}

double
similarity(double g, double h, double lambda)
{
    return g * g / (h + lambda);
}

} // namespace

void
GBTRegressor::train(const Dataset &data, const GBTParams &params)
{
    boreas_assert(data.numRows() > 0, "empty training set");
    boreas_assert(params.maxDepth >= 1 && params.nEstimators >= 1,
                  "bad GBT params");
    params_ = params;
    numFeatures_ = data.numFeatures();
    trees_.clear();

    const size_t n = data.numRows();
    base_ = data.targetMean();

    const BinnedData binned = binFeatures(data, params.maxBins);

    // Flat per-feature histogram layout, allocated once and reused for
    // every node of every tree (the per-node vector-of-vectors was a
    // dominant allocation cost at depth > 3).
    const size_t nf = binned.numFeatures;
    std::vector<size_t> bin_offset(nf + 1, 0);
    for (size_t f = 0; f < nf; ++f)
        bin_offset[f + 1] = bin_offset[f] + binned.cuts[f].size() + 1;
    const size_t total_bins = bin_offset[nf];
    std::vector<BinStats> hist(total_bins);

    // Below this many (row, feature) visits a node's histogram/scan is
    // cheaper serial than fanned out.
    constexpr size_t kMinParallelWork = 1 << 14;

    std::vector<double> pred(n, base_);
    std::vector<double> grad(n, 0.0);
    Rng rng(params.seed);

    std::vector<int> all_rows(n);
    for (size_t i = 0; i < n; ++i)
        all_rows[i] = static_cast<int>(i);

    for (int t = 0; t < params.nEstimators; ++t) {
        for (size_t i = 0; i < n; ++i)
            grad[i] = pred[i] - data.y(i);

        // Optional row subsampling per boosting round.
        std::vector<int> rows;
        if (params.subsample >= 1.0) {
            rows = all_rows;
        } else {
            rows.reserve(static_cast<size_t>(n * params.subsample) + 1);
            for (size_t i = 0; i < n; ++i)
                if (rng.uniform() < params.subsample)
                    rows.push_back(static_cast<int>(i));
            if (rows.empty())
                rows = all_rows;
        }

        GBTTree tree;
        // Recursive level-wise growth over index ranges of `rows`.
        struct Task
        {
            int node;
            size_t begin, end;
            int depth;
        };
        tree.nodes.push_back({});
        std::vector<Task> stack{{0, 0, rows.size(), 0}};

        while (!stack.empty()) {
            const Task task = stack.back();
            stack.pop_back();

            double gsum = 0.0;
            const double hsum =
                static_cast<double>(task.end - task.begin);
            for (size_t k = task.begin; k < task.end; ++k)
                gsum += grad[rows[k]];

            GBTNode &placeholder = tree.nodes[task.node];
            placeholder.value = leafWeight(gsum, hsum, params.lambda);

            if (task.depth >= params.maxDepth ||
                hsum < 2.0 * params.minChildWeight) {
                continue; // stays a leaf
            }

            // Histograms per feature, into the flat scratch buffer.
            // Per (feature, bin) the accumulation order is always row
            // order, so serial and fanned-out builds agree bitwise.
            const size_t node_rows = task.end - task.begin;
            const bool wide = node_rows * nf >= kMinParallelWork;
            std::fill(hist.begin(), hist.end(), BinStats{});
            auto build_hist = [&](int64_t f_lo, int64_t f_hi) {
                for (size_t k = task.begin; k < task.end; ++k) {
                    const int r = rows[k];
                    const double g = grad[r];
                    const uint16_t *codes = binned.codes.data() +
                        static_cast<size_t>(r) * nf;
                    for (int64_t f = f_lo; f < f_hi; ++f) {
                        BinStats &bs =
                            hist[bin_offset[f] + codes[f]];
                        bs.g += g;
                        bs.h += 1.0;
                    }
                }
            };
            {
                obs::ScopedTimer timer("gbt.histogram");
                if (wide) {
                    ThreadPool::global().parallelFor(
                        0, static_cast<int64_t>(nf), 1, build_hist);
                } else {
                    build_hist(0, static_cast<int64_t>(nf));
                }
            }

            // Best split scan, fanned out over features. Each chunk
            // keeps a local argmax; the merge walks chunks in feature
            // order with the same strict > the serial scan uses, so
            // ties resolve identically (lowest feature, lowest bin).
            const double parent_sim =
                similarity(gsum, hsum, params.lambda);
            struct SplitCand
            {
                double gain = 0.0;
                int feature = -1;
                int bin = -1;
            };
            std::vector<SplitCand> cand(nf);
            auto scan_features = [&](int64_t f_lo, int64_t f_hi) {
                for (int64_t f = f_lo; f < f_hi; ++f) {
                    SplitCand best;
                    double gl = 0.0, hl = 0.0;
                    const BinStats *fh = hist.data() + bin_offset[f];
                    const size_t nbins =
                        bin_offset[f + 1] - bin_offset[f];
                    for (size_t bin = 0; bin + 1 < nbins; ++bin) {
                        gl += fh[bin].g;
                        hl += fh[bin].h;
                        const double gr = gsum - gl;
                        const double hr = hsum - hl;
                        if (hl < params.minChildWeight ||
                            hr < params.minChildWeight)
                            continue;
                        const double gain = 0.5 *
                            (similarity(gl, hl, params.lambda) +
                             similarity(gr, hr, params.lambda) -
                             parent_sim) - params.gamma;
                        if (gain > best.gain) {
                            best.gain = gain;
                            best.feature = static_cast<int>(f);
                            best.bin = static_cast<int>(bin);
                        }
                    }
                    cand[f] = best;
                }
            };
            {
                obs::ScopedTimer timer("gbt.split");
                if (wide) {
                    ThreadPool::global().parallelFor(
                        0, static_cast<int64_t>(nf), 1, scan_features);
                } else {
                    scan_features(0, static_cast<int64_t>(nf));
                }
            }
            double best_gain = 0.0;
            int best_feature = -1;
            int best_bin = -1;
            for (size_t f = 0; f < nf; ++f) {
                if (cand[f].gain > best_gain) {
                    best_gain = cand[f].gain;
                    best_feature = cand[f].feature;
                    best_bin = cand[f].bin;
                }
            }

            if (best_feature < 0)
                continue; // no profitable split: leaf

            // Partition the row range by the winning bin.
            const auto mid_it = std::partition(
                rows.begin() + task.begin, rows.begin() + task.end,
                [&](int r) {
                    return binned.code(r, best_feature) <=
                        static_cast<uint16_t>(best_bin);
                });
            const size_t mid = static_cast<size_t>(
                mid_it - rows.begin());
            if (mid == task.begin || mid == task.end)
                continue; // degenerate partition: leaf

            const int left = static_cast<int>(tree.nodes.size());
            tree.nodes.push_back({});
            const int right = static_cast<int>(tree.nodes.size());
            tree.nodes.push_back({});

            GBTNode &node = tree.nodes[task.node];
            node.feature = best_feature;
            node.threshold = binned.cuts[best_feature][best_bin];
            node.left = left;
            node.right = right;
            node.gain = best_gain;

            stack.push_back({left, task.begin, mid, task.depth + 1});
            stack.push_back({right, mid, task.end, task.depth + 1});
        }

        // Update running predictions with the shrunk tree output
        // (independent per row; fanned out for large datasets). The
        // freshly grown tree is flattened first: treeLeaf() selects
        // the same leaf as tree.predict(), so the update is
        // bit-identical while the descent is branchless.
        {
            obs::ScopedTimer timer("gbt.predict");
            const FlatGBT flat_tree =
                FlatGBT::fromSingleTree(tree, nf);
            ThreadPool::global().parallelFor(
                0, static_cast<int64_t>(n), 4096,
                [&](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i) {
                        pred[i] += params.learningRate *
                            flat_tree.treeLeaf(0, data.row(i));
                    }
                });
        }

        trees_.push_back(std::move(tree));
    }

    if constexpr (kCheckedBuild) {
        // A non-finite leaf weight (e.g. from a degenerate hessian
        // sum) poisons every later prediction; catch it at the source.
        checkValuesInRange(&base_, 1, -1e12, 1e12, "GBT base");
        for (const auto &t : trees_) {
            for (const auto &node : t.nodes) {
                checkValuesInRange(&node.value, 1, -1e12, 1e12,
                                   "GBT leaf weight");
                checkValuesInRange(&node.threshold, 1, -1e15, 1e15,
                                   "GBT split threshold");
                boreas_check(node.feature <
                             static_cast<int>(numFeatures_),
                             "split feature %d outside %zu features",
                             node.feature, numFeatures_);
            }
        }
        checkValuesInRange(pred.data(), pred.size(), -1e12, 1e12,
                           "GBT training prediction");
    }
}

double
GBTRegressor::predict(const double *x) const
{
    double acc = base_;
    for (const auto &tree : trees_)
        acc += params_.learningRate * tree.predict(x);
    return acc;
}

double
GBTRegressor::predict(const std::vector<double> &x) const
{
    boreas_assert(x.size() == numFeatures_,
                  "feature vector size %zu != %zu", x.size(),
                  numFeatures_);
    return predict(x.data());
}

std::vector<double>
GBTRegressor::predictAll(const Dataset &data) const
{
    boreas_assert(data.numFeatures() == numFeatures_,
                  "dataset feature count mismatch");
    obs::ScopedTimer timer("gbt.predict");
    // Compile-and-batch through the flat engine: compilation is a few
    // microseconds for paper-sized models, and predictBatch is
    // bit-identical to the per-row reference walk (DESIGN.md §12).
    const FlatGBT flat(*this);
    return flat.predictDataset(data);
}

double
GBTRegressor::mse(const Dataset &data) const
{
    boreas_assert(data.numRows() > 0, "empty eval set");
    const auto preds = predictAll(data);
    double acc = 0.0;
    for (size_t r = 0; r < data.numRows(); ++r) {
        const double d = preds[r] - data.y(r);
        acc += d * d;
    }
    return acc / static_cast<double>(data.numRows());
}

std::vector<double>
GBTRegressor::featureImportance() const
{
    std::vector<double> gains(numFeatures_, 0.0);
    for (const auto &tree : trees_)
        for (const auto &node : tree.nodes)
            if (node.feature >= 0)
                gains[node.feature] += node.gain;
    double total = 0.0;
    for (double g : gains)
        total += g;
    if (total > 0.0)
        for (double &g : gains)
            g /= total;
    return gains;
}

size_t
GBTRegressor::modelBytes() const
{
    // Sec. V-E accounting: full trees, one 32-bit value per node.
    const size_t nodes_per_tree =
        (static_cast<size_t>(1) << (params_.maxDepth + 1)) - 1;
    return trees_.size() * nodes_per_tree * 4;
}

size_t
GBTRegressor::comparisonsPerPrediction() const
{
    return trees_.size() * static_cast<size_t>(params_.maxDepth);
}

size_t
GBTRegressor::additionsPerPrediction() const
{
    return trees_.empty() ? 0 : trees_.size() - 1;
}

void
GBTRegressor::save(std::ostream &os) const
{
    // Full round-trip precision: thresholds decide tree paths, so any
    // rounding can flip predictions. Scoped so the caller's stream
    // format is left untouched.
    ScopedStreamPrecision precision(os);
    os << "boreas-gbt 1\n";
    os << params_.learningRate << " " << params_.gamma << " "
       << params_.maxDepth << " " << params_.nEstimators << " "
       << params_.lambda << "\n";
    os << base_ << " " << numFeatures_ << " " << trees_.size() << "\n";
    for (const auto &tree : trees_) {
        os << tree.nodes.size() << "\n";
        for (const auto &n : tree.nodes) {
            os << n.feature << " " << n.threshold << " " << n.left << " "
               << n.right << " " << n.value << " " << n.gain << "\n";
        }
    }
}

void
GBTRegressor::load(std::istream &is)
{
    // Upper bounds on what a genuine model can contain, enforced
    // BEFORE any container is sized from a stream-supplied count: a
    // corrupted count must fail with a clean error, never a multi-GB
    // allocation. The largest paper configuration (fig7, 223 trees of
    // depth 3) is orders of magnitude below all of them.
    constexpr size_t kMaxLoadTrees = 1 << 16;
    constexpr size_t kMaxLoadNodes = 1 << 20;
    constexpr size_t kMaxLoadFeatures = 1 << 16;

    std::string magic;
    int version = 0;
    is >> magic >> version;
    boreas_assert(!is.fail() && magic == "boreas-gbt" && version == 1,
                  "bad GBT model header");
    is >> params_.learningRate >> params_.gamma >> params_.maxDepth >>
        params_.nEstimators >> params_.lambda;
    size_t num_trees = 0;
    is >> base_ >> numFeatures_ >> num_trees;
    // fail(), not good(): a byte-complete file whose last token meets
    // EOF instead of a trailing newline sets eofbit (good() false)
    // without failing any extraction, and must load cleanly.
    boreas_assert(!is.fail(), "truncated GBT model");
    boreas_assert(std::isfinite(params_.learningRate) &&
                  std::isfinite(params_.gamma) &&
                  std::isfinite(params_.lambda) &&
                  std::isfinite(base_),
                  "bad GBT model: non-finite header value");
    boreas_assert(params_.maxDepth >= 1 && params_.maxDepth <= 64,
                  "bad GBT model: depth %d out of range",
                  params_.maxDepth);
    boreas_assert(numFeatures_ >= 1 &&
                  numFeatures_ <= kMaxLoadFeatures,
                  "bad GBT model: %zu features out of range",
                  numFeatures_);
    boreas_assert(num_trees <= kMaxLoadTrees,
                  "bad GBT model: tree count %zu out of range",
                  num_trees);
    trees_.assign(num_trees, {});
    for (auto &tree : trees_) {
        size_t num_nodes = 0;
        is >> num_nodes;
        boreas_assert(!is.fail(), "truncated GBT model tree");
        boreas_assert(num_nodes >= 1 && num_nodes <= kMaxLoadNodes,
                      "bad GBT model: node count %zu out of range",
                      num_nodes);
        tree.nodes.assign(num_nodes, {});
        for (auto &n : tree.nodes) {
            is >> n.feature >> n.threshold >> n.left >> n.right >>
                n.value >> n.gain;
        }
        boreas_assert(!is.fail(), "truncated GBT model tree");
        // Structural validation before anything can call predict():
        // an out-of-range feature or child index would read out of
        // bounds inside the descent loop. Children must point strictly
        // forward (the grower appends them after their parent), which
        // also guarantees every descent terminates.
        const int n_nodes = static_cast<int>(num_nodes);
        for (int i = 0; i < n_nodes; ++i) {
            const GBTNode &n = tree.nodes[i];
            boreas_assert(std::isfinite(n.value) &&
                          std::isfinite(n.threshold),
                          "bad GBT model: non-finite node %d", i);
            if (n.feature < 0)
                continue; // leaf: child links unused
            boreas_assert(n.feature <
                          static_cast<int>(numFeatures_),
                          "bad GBT model: node %d feature %d outside "
                          "%zu features", i, n.feature, numFeatures_);
            boreas_assert(n.left > i && n.left < n_nodes &&
                          n.right > i && n.right < n_nodes,
                          "bad GBT model: node %d children %d/%d out "
                          "of range", i, n.left, n.right);
        }
    }
}

} // namespace boreas
