#include "ml/dataset.hh"

#include <algorithm>

#include "common/checked.hh"
#include "common/logging.hh"

namespace boreas
{

Dataset::Dataset(std::vector<std::string> feature_names)
    : featureNames_(std::move(feature_names))
{
    boreas_assert(!featureNames_.empty(), "dataset needs features");
}

void
Dataset::addRow(const std::vector<double> &features, double target,
                int group)
{
    boreas_assert(features.size() == numFeatures(),
                  "row width %zu != %zu features",
                  features.size(), numFeatures());
    if constexpr (kCheckedBuild) {
        checkValuesInRange(features.data(), features.size(), -1e15,
                           1e15, "dataset feature");
        checkValuesInRange(&target, 1, -1e15, 1e15, "dataset target");
    }
    features_.insert(features_.end(), features.begin(), features.end());
    targets_.push_back(target);
    groups_.push_back(group);
}

void
Dataset::append(const Dataset &other)
{
    boreas_assert(other.featureNames_ == featureNames_,
                  "appending a dataset with a different schema");
    features_.insert(features_.end(), other.features_.begin(),
                     other.features_.end());
    targets_.insert(targets_.end(), other.targets_.begin(),
                    other.targets_.end());
    groups_.insert(groups_.end(), other.groups_.begin(),
                   other.groups_.end());
}

std::vector<int>
Dataset::distinctGroups() const
{
    std::vector<int> out;
    for (int g : groups_)
        if (std::find(out.begin(), out.end(), g) == out.end())
            out.push_back(g);
    return out;
}

Dataset
Dataset::selectGroups(const std::vector<int> &groups, bool invert) const
{
    Dataset out(featureNames_);
    for (size_t r = 0; r < numRows(); ++r) {
        const bool in = std::find(groups.begin(), groups.end(),
                                  groups_[r]) != groups.end();
        if (in != invert) {
            out.features_.insert(out.features_.end(), row(r),
                                 row(r) + numFeatures());
            out.targets_.push_back(targets_[r]);
            out.groups_.push_back(groups_[r]);
        }
    }
    return out;
}

Dataset
Dataset::selectFeatures(const std::vector<size_t> &indices) const
{
    std::vector<std::string> names;
    names.reserve(indices.size());
    for (size_t i : indices) {
        boreas_assert(i < numFeatures(), "feature index %zu out of range",
                      i);
        names.push_back(featureNames_[i]);
    }
    Dataset out(std::move(names));
    out.targets_ = targets_;
    out.groups_ = groups_;
    out.features_.reserve(numRows() * indices.size());
    for (size_t r = 0; r < numRows(); ++r)
        for (size_t i : indices)
            out.features_.push_back(x(r, i));
    return out;
}

int
Dataset::featureIndex(const std::string &name) const
{
    for (size_t i = 0; i < featureNames_.size(); ++i)
        if (featureNames_[i] == name)
            return static_cast<int>(i);
    return -1;
}

double
Dataset::targetMean() const
{
    if (targets_.empty())
        return 0.0;
    double acc = 0.0;
    for (double t : targets_)
        acc += t;
    return acc / static_cast<double>(targets_.size());
}

} // namespace boreas
