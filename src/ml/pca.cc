#include "ml/pca.hh"

#include <istream>
#include <ostream>

#include <cmath>

#include "common/iofmt.hh"
#include "common/logging.hh"

namespace boreas
{

void
PCA::fit(const std::vector<double> &x, size_t d, size_t k)
{
    boreas_assert(d > 0 && x.size() % d == 0, "bad PCA input shape");
    const size_t n = x.size() / d;
    boreas_assert(n >= 2, "PCA needs >= 2 rows");
    boreas_assert(k >= 1 && k <= d, "bad component count %zu", k);

    mean_.assign(d, 0.0);
    scale_.assign(d, 1.0);
    for (size_t r = 0; r < n; ++r)
        for (size_t j = 0; j < d; ++j)
            mean_[j] += x[r * d + j];
    for (size_t j = 0; j < d; ++j)
        mean_[j] /= static_cast<double>(n);

    std::vector<double> var(d, 0.0);
    for (size_t r = 0; r < n; ++r) {
        for (size_t j = 0; j < d; ++j) {
            const double c = x[r * d + j] - mean_[j];
            var[j] += c * c;
        }
    }
    for (size_t j = 0; j < d; ++j) {
        var[j] /= static_cast<double>(n);
        scale_[j] = var[j] > 1e-18 ? std::sqrt(var[j]) : 1.0;
    }

    // Covariance of the standardized data.
    Matrix cov(d, d);
    std::vector<double> z(d);
    for (size_t r = 0; r < n; ++r) {
        for (size_t j = 0; j < d; ++j)
            z[j] = (x[r * d + j] - mean_[j]) / scale_[j];
        for (size_t i = 0; i < d; ++i)
            for (size_t j = i; j < d; ++j)
                cov.at(i, j) += z[i] * z[j];
    }
    for (size_t i = 0; i < d; ++i)
        for (size_t j = i; j < d; ++j) {
            cov.at(i, j) /= static_cast<double>(n);
            cov.at(j, i) = cov.at(i, j);
        }

    std::vector<double> eigvals;
    Matrix eigvecs;
    cov.symmetricEigen(eigvals, eigvecs);

    components_ = Matrix(k, d);
    for (size_t c = 0; c < k; ++c)
        for (size_t j = 0; j < d; ++j)
            components_.at(c, j) = eigvecs.at(j, c);

    double total = 0.0;
    for (double v : eigvals)
        total += std::max(0.0, v);
    explained_.assign(k, 0.0);
    for (size_t c = 0; c < k; ++c)
        explained_[c] = total > 0.0 ? std::max(0.0, eigvals[c]) / total
                                    : 0.0;
}

std::vector<double>
PCA::transform(const double *x) const
{
    const size_t d = mean_.size();
    const size_t k = components_.rows();
    std::vector<double> out(k, 0.0);
    for (size_t c = 0; c < k; ++c) {
        double acc = 0.0;
        for (size_t j = 0; j < d; ++j)
            acc += components_.at(c, j) * (x[j] - mean_[j]) / scale_[j];
        out[c] = acc;
    }
    return out;
}

std::vector<double>
PCA::transform(const std::vector<double> &x) const
{
    boreas_assert(x.size() == mean_.size(), "bad transform width");
    return transform(x.data());
}

std::vector<double>
PCA::transformAll(const std::vector<double> &x) const
{
    const size_t d = mean_.size();
    boreas_assert(d > 0 && x.size() % d == 0, "bad transform shape");
    const size_t n = x.size() / d;
    const size_t k = components_.rows();
    std::vector<double> out;
    out.reserve(n * k);
    for (size_t r = 0; r < n; ++r) {
        const auto z = transform(x.data() + r * d);
        out.insert(out.end(), z.begin(), z.end());
    }
    return out;
}

void
PCA::save(std::ostream &os) const
{
    ScopedStreamPrecision precision(os);
    os << "boreas-pca 1\n";
    const size_t d = mean_.size();
    const size_t k = components_.rows();
    os << d << " " << k << "\n";
    for (double v : mean_)
        os << v << "\n";
    for (double v : scale_)
        os << v << "\n";
    for (size_t c = 0; c < k; ++c)
        for (size_t j = 0; j < d; ++j)
            os << components_.at(c, j) << "\n";
    for (double v : explained_)
        os << v << "\n";
}

void
PCA::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    boreas_assert(magic == "boreas-pca" && version == 1,
                  "bad PCA header");
    size_t d = 0, k = 0;
    is >> d >> k;
    boreas_assert(d > 0 && k > 0 && k <= d, "bad PCA shape");
    mean_.assign(d, 0.0);
    scale_.assign(d, 1.0);
    for (double &v : mean_)
        is >> v;
    for (double &v : scale_)
        is >> v;
    components_ = Matrix(k, d);
    for (size_t c = 0; c < k; ++c)
        for (size_t j = 0; j < d; ++j)
            is >> components_.at(c, j);
    explained_.assign(k, 0.0);
    for (double &v : explained_)
        is >> v;
    boreas_assert(is.good() || is.eof(), "truncated PCA model");
}

} // namespace boreas

