#include "ml/kmeans.hh"

#include <istream>
#include <ostream>

#include <cmath>
#include <limits>

#include "common/iofmt.hh"
#include "common/logging.hh"

namespace boreas
{

namespace
{

double
sqDist(const double *a, const double *b, size_t dim)
{
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

} // namespace

int
KMeansResult::nearest(const double *x) const
{
    int best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (size_t c = 0; c < k(); ++c) {
        const double d = sqDist(x, centroids.data() + c * dim, dim);
        if (d < best_d) {
            best_d = d;
            best = static_cast<int>(c);
        }
    }
    return best;
}

KMeansResult
kmeans(const std::vector<double> &x, size_t dim, size_t k, Rng &rng,
       int max_iters)
{
    boreas_assert(dim > 0 && x.size() % dim == 0, "bad kmeans shape");
    const size_t n = x.size() / dim;
    boreas_assert(k >= 1 && k <= n, "bad k=%zu for n=%zu", k, n);

    KMeansResult res;
    res.dim = dim;
    res.centroids.reserve(k * dim);
    res.assignments.assign(n, 0);

    // k-means++ seeding.
    const size_t first = static_cast<size_t>(
        rng.uniformInt(0, static_cast<int>(n) - 1));
    res.centroids.insert(res.centroids.end(), x.data() + first * dim,
                         x.data() + (first + 1) * dim);
    std::vector<double> d2(n);
    while (res.centroids.size() < k * dim) {
        double total = 0.0;
        const size_t have = res.centroids.size() / dim;
        for (size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            for (size_t c = 0; c < have; ++c)
                best = std::min(best,
                                sqDist(x.data() + i * dim,
                                       res.centroids.data() + c * dim,
                                       dim));
            d2[i] = best;
            total += best;
        }
        size_t chosen = n - 1;
        if (total > 0.0) {
            double pick = rng.uniform() * total;
            for (size_t i = 0; i < n; ++i) {
                pick -= d2[i];
                if (pick <= 0.0) {
                    chosen = i;
                    break;
                }
            }
        } else {
            chosen = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int>(n) - 1));
        }
        res.centroids.insert(res.centroids.end(), x.data() + chosen * dim,
                             x.data() + (chosen + 1) * dim);
    }

    // Lloyd iterations.
    std::vector<double> sums(k * dim);
    std::vector<size_t> counts(k);
    for (int it = 0; it < max_iters; ++it) {
        bool changed = false;
        for (size_t i = 0; i < n; ++i) {
            const int c = res.nearest(x.data() + i * dim);
            if (res.assignments[i] != c) {
                res.assignments[i] = c;
                changed = true;
            }
        }
        res.iterations = it + 1;
        if (!changed && it > 0)
            break;

        std::fill(sums.begin(), sums.end(), 0.0);
        std::fill(counts.begin(), counts.end(), 0);
        for (size_t i = 0; i < n; ++i) {
            const size_t c = static_cast<size_t>(res.assignments[i]);
            for (size_t j = 0; j < dim; ++j)
                sums[c * dim + j] += x[i * dim + j];
            ++counts[c];
        }
        for (size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue; // keep the old centroid for empty clusters
            for (size_t j = 0; j < dim; ++j)
                res.centroids[c * dim + j] =
                    sums[c * dim + j] / static_cast<double>(counts[c]);
        }
    }

    res.inertia = 0.0;
    for (size_t i = 0; i < n; ++i)
        res.inertia += sqDist(
            x.data() + i * dim,
            res.centroids.data() +
                static_cast<size_t>(res.assignments[i]) * dim,
            dim);
    return res;
}

void
KMeansResult::save(std::ostream &os) const
{
    ScopedStreamPrecision precision(os);
    os << "boreas-kmeans 1\n";
    os << dim << " " << k() << "\n";
    for (double v : centroids)
        os << v << "\n";
}

void
KMeansResult::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    boreas_assert(magic == "boreas-kmeans" && version == 1,
                  "bad kmeans header");
    size_t nk = 0;
    is >> dim >> nk;
    boreas_assert(dim > 0 && nk > 0, "bad kmeans shape");
    centroids.assign(dim * nk, 0.0);
    for (double &v : centroids)
        is >> v;
    assignments.clear();
    inertia = 0.0;
    iterations = 0;
    boreas_assert(is.good() || is.eof(), "truncated kmeans model");
}

} // namespace boreas
