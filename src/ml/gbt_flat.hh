/**
 * @file
 * FlatGBT: the batched, flattened inference engine compiled from a
 * trained GBTRegressor (DESIGN.md §12, ROADMAP item 3).
 *
 * The training-side GBTTree stores one 40-byte GBTNode per node with
 * explicit left/right child links; a prediction pointer-chases those
 * links tree by tree, one data-dependent branch per level. FlatGBT
 * recompiles the ensemble into per-ensemble contiguous
 * structure-of-arrays storage laid out for serving:
 *
 *   - every tree is padded to a perfect binary tree of its own depth,
 *     so children are pure node-index arithmetic (left = 2k+1,
 *     right = 2k+2) and the descent is branchless;
 *   - split thresholds are snapped to the per-feature binned cut
 *     table they were chosen from (gbt.cc quantile binning): nodes
 *     store a 16-bit cut index, and the comparison decodes the exact
 *     same double the reference tree compares against, so no
 *     prediction can change (§12 quantization argument);
 *   - leaf values live in one contiguous array per ensemble.
 *
 * predictBatch() fans row ranges over ThreadPool::global().parallelFor
 * and walks rows through each tree in blocks of eight (independent
 * descents keep the pipeline full), with a scalar tail for the
 * leftover rows. Every row's accumulation order is identical to
 * GBTRegressor::predict — base + learningRate * leaf, in tree order —
 * so results are bit-identical at every batch size and thread count.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.hh"
#include "ml/gbt.hh"

namespace boreas
{

/** Flattened SoA inference engine for a trained GBT ensemble. */
class FlatGBT
{
  public:
    /** Trees deeper than this would blow up the perfect-tree padding
     *  (2^depth leaf slots per tree); compile refuses them. */
    static constexpr int kMaxDepth = 20;

    FlatGBT() = default;

    /** Compile a trained ensemble. Validates the model structure
     *  (feature indices, forward-pointing children, finite values)
     *  and panics on a malformed model. */
    explicit FlatGBT(const GBTRegressor &model);

    /**
     * Flatten one tree with base 0 (the trainer's per-round predict
     * phase: callers scale the raw treeLeaf() by their own learning
     * rate, exactly as the reference update does).
     */
    static FlatGBT fromSingleTree(const GBTTree &tree,
                                  size_t num_features);

    bool compiled() const { return compiled_; }
    size_t numTrees() const { return treeDepth_.size(); }
    size_t numFeatures() const { return numFeatures_; }
    double basePrediction() const { return base_; }

    /** Padded internal-node slots across the ensemble. */
    size_t paddedNodes() const { return feature_.size(); }
    /** Padded leaf slots across the ensemble. */
    size_t paddedLeaves() const { return leaf_.size(); }
    /** Distinct quantized thresholds across all features. */
    size_t numCuts() const { return cuts_.size(); }
    /** Resident footprint of the SoA arrays, in bytes. */
    size_t flatBytes() const;

    /** Predict one row (pointer to numFeatures() doubles);
     *  bit-identical to GBTRegressor::predict. */
    double predictOne(const double *x) const;

    /** Raw (unscaled, baseless) leaf value of tree `t` for a row. */
    double treeLeaf(size_t t, const double *x) const;

    /**
     * Predict `n` rows (row-major, numFeatures() doubles each) into
     * out[0..n). Fans row ranges over the global thread pool; every
     * out[r] depends only on row r, so results are bit-identical at
     * any thread count.
     */
    void predictBatch(const double *rows, size_t n, double *out) const;

    /** predictBatch over a dataset (must share the feature order). */
    std::vector<double> predictDataset(const Dataset &data) const;

  private:
    void compile(const std::vector<GBTTree> &trees, size_t num_features,
                 double base, double learning_rate);
    void predictRange(const double *rows, int64_t lo, int64_t hi,
                      double *out) const;

    bool compiled_ = false;
    size_t numFeatures_ = 0;
    double base_ = 0.0;
    double learningRate_ = 1.0;

    // Per-tree geometry: depth, and offsets into the node/leaf arrays.
    std::vector<int32_t> treeDepth_;
    std::vector<int32_t> nodeOffset_;
    std::vector<int32_t> leafOffset_;

    // Internal-node SoA in per-tree heap order (slot k's children are
    // 2k+1 / 2k+2). thr_ is the cut table decoded per node so the hot
    // loop pays one load, not two.
    std::vector<int32_t> feature_;
    std::vector<uint16_t> cut_; ///< index into the feature's cut slice
    std::vector<double> thr_;

    std::vector<double> leaf_;

    // Quantized threshold table: sorted distinct cuts per feature.
    std::vector<double> cuts_;
    std::vector<int32_t> cutOffset_; ///< per-feature slice starts
};

} // namespace boreas
