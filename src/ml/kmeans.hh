/**
 * @file
 * General n-dimensional k-means (Lloyd with k-means++ seeding).
 *
 * Used by the Cochran-Reda baseline to form workload-phase centroids in
 * PCA space (Sec. IV-C). The 2-D sensor-placement clustering in
 * sensors/placement is a separate, geometry-specialized implementation.
 */

#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/rng.hh"

namespace boreas
{

/** Result of a k-means run. */
struct KMeansResult
{
    size_t dim = 0;
    std::vector<double> centroids;  ///< k x dim, row-major
    std::vector<int> assignments;   ///< per input row
    double inertia = 0.0;           ///< sum of squared distances
    int iterations = 0;

    size_t k() const { return dim == 0 ? 0 : centroids.size() / dim; }

    /** Index of the closest centroid to a point. */
    int nearest(const double *x) const;

    /** Serialize centroids (assignments/inertia are not persisted). */
    void save(std::ostream &os) const;

    /** Deserialize; panics on malformed input. */
    void load(std::istream &is);
};

/**
 * Cluster n rows of d features into k clusters.
 *
 * @param x_rowmajor n*d values
 * @param dim d
 * @param k cluster count (k <= n required)
 * @param rng seeding source
 * @param max_iters Lloyd iteration cap
 */
KMeansResult kmeans(const std::vector<double> &x_rowmajor, size_t dim,
                    size_t k, Rng &rng, int max_iters = 200);

} // namespace boreas
