#include "ml/gbt_flat.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "obs/trace.hh"

namespace boreas
{

namespace
{

/** Measured depth of one tree, validating the structure on the way:
 *  features in range, children forward-pointing (termination proof),
 *  finite values. Panics on a malformed tree. */
int
validateTree(const GBTTree &tree, size_t num_features)
{
    boreas_assert(!tree.nodes.empty(), "FlatGBT: empty tree");
    const int n = static_cast<int>(tree.nodes.size());
    int max_depth = 0;
    std::vector<std::pair<int, int>> stack{{0, 0}};
    while (!stack.empty()) {
        const auto [idx, d] = stack.back();
        stack.pop_back();
        max_depth = std::max(max_depth, d);
        const GBTNode &node = tree.nodes[idx];
        boreas_assert(std::isfinite(node.value),
                      "FlatGBT: non-finite leaf weight at node %d", idx);
        if (node.feature < 0)
            continue;
        boreas_assert(node.feature <
                      static_cast<int>(num_features),
                      "FlatGBT: node %d splits on feature %d outside "
                      "%zu features", idx, node.feature, num_features);
        boreas_assert(std::isfinite(node.threshold),
                      "FlatGBT: non-finite threshold at node %d", idx);
        // Children strictly after the parent: the level-wise grower
        // appends children, and forward-only links guarantee every
        // descent terminates.
        boreas_assert(node.left > idx && node.left < n &&
                      node.right > idx && node.right < n,
                      "FlatGBT: node %d has out-of-range children "
                      "%d/%d (tree of %d nodes)",
                      idx, node.left, node.right, n);
        stack.push_back({node.left, d + 1});
        stack.push_back({node.right, d + 1});
    }
    boreas_assert(max_depth <= FlatGBT::kMaxDepth,
                  "FlatGBT: tree depth %d exceeds the padding limit %d",
                  max_depth, FlatGBT::kMaxDepth);
    return max_depth;
}

/**
 * Recursively copy the subtree rooted at `orig` into perfect-tree slot
 * `k` at `level`. A leaf reached before the padded depth becomes a
 * synthetic always-left split (threshold +inf) whose whole subtree
 * replicates the leaf value, so padding cannot change any prediction.
 */
void
fillSubtree(const GBTTree &tree, int orig, int32_t k, int level,
            int depth, int32_t *feature, uint16_t *cut, double *thr,
            double *leaf)
{
    const GBTNode &node = tree.nodes[orig];
    if (level == depth) {
        boreas_assert(node.feature < 0,
                      "FlatGBT: internal node below measured depth");
        leaf[k - ((1 << depth) - 1)] = node.value;
        return;
    }
    if (node.feature >= 0) {
        feature[k] = node.feature;
        thr[k] = node.threshold;
        // cut[k] is patched by the caller once the cut table exists.
        fillSubtree(tree, node.left, 2 * k + 1, level + 1, depth,
                    feature, cut, thr, leaf);
        fillSubtree(tree, node.right, 2 * k + 2, level + 1, depth,
                    feature, cut, thr, leaf);
    } else {
        // Padding: replicate the leaf below a vacuous split.
        feature[k] = 0;
        thr[k] = std::numeric_limits<double>::infinity();
        fillSubtree(tree, orig, 2 * k + 1, level + 1, depth, feature,
                    cut, thr, leaf);
        fillSubtree(tree, orig, 2 * k + 2, level + 1, depth, feature,
                    cut, thr, leaf);
    }
}

} // namespace

FlatGBT::FlatGBT(const GBTRegressor &model)
{
    compile(model.trees(), model.numFeatures(), model.basePrediction(),
            model.params().learningRate);
}

FlatGBT
FlatGBT::fromSingleTree(const GBTTree &tree, size_t num_features)
{
    FlatGBT flat;
    flat.compile({tree}, num_features, 0.0, 1.0);
    return flat;
}

void
FlatGBT::compile(const std::vector<GBTTree> &trees, size_t num_features,
                 double base, double learning_rate)
{
    obs::ScopedTimer timer("gbt.flat_compile");
    numFeatures_ = num_features;
    base_ = base;
    learningRate_ = learning_rate;

    const size_t nt = trees.size();
    treeDepth_.resize(nt);
    nodeOffset_.resize(nt);
    leafOffset_.resize(nt);

    // Pass 1: validate every tree and lay out the padded geometry.
    int64_t total_nodes = 0, total_leaves = 0;
    for (size_t t = 0; t < nt; ++t) {
        const int d = validateTree(trees[t], num_features);
        treeDepth_[t] = d;
        nodeOffset_[t] = static_cast<int32_t>(total_nodes);
        leafOffset_[t] = static_cast<int32_t>(total_leaves);
        total_nodes += (int64_t(1) << d) - 1;
        total_leaves += int64_t(1) << d;
    }

    // Pass 2: the quantized threshold table — per feature, the sorted
    // distinct cut values the trainer actually split on.
    std::vector<std::vector<double>> per_feature(num_features);
    for (const GBTTree &tree : trees)
        for (const GBTNode &node : tree.nodes)
            if (node.feature >= 0)
                per_feature[node.feature].push_back(node.threshold);
    cutOffset_.assign(num_features + 1, 0);
    cuts_.clear();
    for (size_t f = 0; f < num_features; ++f) {
        auto &v = per_feature[f];
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
        boreas_assert(v.size() <= 0xFFFF,
                      "FlatGBT: feature %zu has %zu distinct cuts "
                      "(16-bit cut index overflow)", f, v.size());
        cutOffset_[f] = static_cast<int32_t>(cuts_.size());
        cuts_.insert(cuts_.end(), v.begin(), v.end());
    }
    cutOffset_[num_features] = static_cast<int32_t>(cuts_.size());

    // Pass 3: fill the SoA arrays tree by tree, then snap every real
    // split to its cut index (padding slots keep cut 0 / +inf).
    feature_.assign(total_nodes, 0);
    cut_.assign(total_nodes, 0);
    thr_.assign(total_nodes,
                std::numeric_limits<double>::infinity());
    leaf_.assign(total_leaves, 0.0);
    for (size_t t = 0; t < nt; ++t) {
        fillSubtree(trees[t], 0, 0, 0, treeDepth_[t],
                    feature_.data() + nodeOffset_[t],
                    cut_.data() + nodeOffset_[t],
                    thr_.data() + nodeOffset_[t],
                    leaf_.data() + leafOffset_[t]);
    }
    for (size_t i = 0; i < feature_.size(); ++i) {
        if (std::isinf(thr_[i]))
            continue; // padding slot
        const int32_t f = feature_[i];
        const double *lo = cuts_.data() + cutOffset_[f];
        const double *hi = cuts_.data() + cutOffset_[f + 1];
        const double *it = std::lower_bound(lo, hi, thr_[i]);
        boreas_assert(it != hi && *it == thr_[i],
                      "FlatGBT: threshold missing from its own cut "
                      "table (feature %d)", f);
        cut_[i] = static_cast<uint16_t>(it - lo);
        // Decode through the table: the hot loop compares the exact
        // double the reference tree stores, by construction.
        thr_[i] = *it;
    }
    compiled_ = true;
}

size_t
FlatGBT::flatBytes() const
{
    return treeDepth_.size() * sizeof(int32_t) * 3 +
        feature_.size() * (sizeof(int32_t) + sizeof(uint16_t) +
                           sizeof(double)) +
        leaf_.size() * sizeof(double) +
        cuts_.size() * sizeof(double) +
        cutOffset_.size() * sizeof(int32_t);
}

double
FlatGBT::treeLeaf(size_t t, const double *x) const
{
    const int32_t d = treeDepth_[t];
    const int32_t *feat = feature_.data() + nodeOffset_[t];
    const double *thr = thr_.data() + nodeOffset_[t];
    int32_t k = 0;
    for (int32_t level = 0; level < d; ++level) {
        const int32_t i = k;
        k = 2 * i + 1 + (x[feat[i]] <= thr[i] ? 0 : 1);
    }
    return leaf_[leafOffset_[t] + k - ((1 << d) - 1)];
}

double
FlatGBT::predictOne(const double *x) const
{
    double acc = base_;
    const size_t nt = treeDepth_.size();
    for (size_t t = 0; t < nt; ++t)
        acc += learningRate_ * treeLeaf(t, x);
    return acc;
}

void
FlatGBT::predictRange(const double *rows, int64_t lo, int64_t hi,
                      double *out) const
{
    constexpr int kBlock = 8;
    const size_t nf = numFeatures_;
    const size_t nt = treeDepth_.size();
    int64_t r = lo;
    for (; r + kBlock <= hi; r += kBlock) {
        const double *x[kBlock];
        double acc[kBlock];
        for (int b = 0; b < kBlock; ++b) {
            x[b] = rows + static_cast<size_t>(r + b) * nf;
            acc[b] = base_;
        }
        for (size_t t = 0; t < nt; ++t) {
            const int32_t d = treeDepth_[t];
            const int32_t *feat = feature_.data() + nodeOffset_[t];
            const double *thr = thr_.data() + nodeOffset_[t];
            const double *leaf = leaf_.data() + leafOffset_[t];
            int32_t k[kBlock] = {};
            // Eight independent descents per level keep the loads
            // pipelined where one row's chain would stall.
            for (int32_t level = 0; level < d; ++level) {
                for (int b = 0; b < kBlock; ++b) {
                    const int32_t i = k[b];
                    k[b] = 2 * i + 1 +
                        (x[b][feat[i]] <= thr[i] ? 0 : 1);
                }
            }
            const int32_t leaf_base = (1 << d) - 1;
            for (int b = 0; b < kBlock; ++b)
                acc[b] += learningRate_ * leaf[k[b] - leaf_base];
        }
        for (int b = 0; b < kBlock; ++b)
            out[r + b] = acc[b];
    }
    for (; r < hi; ++r) // scalar tail
        out[r] = predictOne(rows + static_cast<size_t>(r) * nf);
}

void
FlatGBT::predictBatch(const double *rows, size_t n, double *out) const
{
    boreas_assert(compiled_, "FlatGBT::predictBatch before compile");
    if (n == 0)
        return;
    obs::ScopedTimer timer("gbt.flat_predict");
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(n), 1024,
        [&](int64_t lo, int64_t hi) {
            predictRange(rows, lo, hi, out);
        });
}

std::vector<double>
FlatGBT::predictDataset(const Dataset &data) const
{
    boreas_assert(data.numFeatures() == numFeatures_,
                  "dataset feature count mismatch");
    std::vector<double> out(data.numRows());
    if (!out.empty())
        predictBatch(data.row(0), data.numRows(), out.data());
    return out;
}

} // namespace boreas
