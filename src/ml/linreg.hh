/**
 * @file
 * Ridge-regularized linear regression (closed form).
 *
 * Used by the Cochran-Reda baseline (Sec. IV-C): per workload phase, a
 * linear model predicts future temperature from the phase's principal
 * components. Also handy as a sanity baseline against the GBT.
 */

#pragma once

#include <iosfwd>
#include <vector>

#include "ml/dataset.hh"

namespace boreas
{

/** Linear model y = w . x + b, fit by ridge least squares. */
class LinearRegression
{
  public:
    /**
     * Fit on (rows x features, targets). ridge adds lambda*I to the
     * normal equations (never applied to the intercept).
     */
    void fit(const Dataset &data, double ridge = 1e-6);

    /** Fit from raw arrays (row-major X). */
    void fit(const std::vector<double> &x_rowmajor, size_t num_features,
             const std::vector<double> &y, double ridge = 1e-6);

    bool trained() const { return !weights_.empty(); }
    const std::vector<double> &weights() const { return weights_; }
    double intercept() const { return intercept_; }

    double predict(const double *x) const;
    double predict(const std::vector<double> &x) const;

    /** MSE over a dataset with matching feature order. */
    double mse(const Dataset &data) const;

    /** Serialize to a line-oriented text format. */
    void save(std::ostream &os) const;

    /** Deserialize; panics on malformed input. */
    void load(std::istream &is);

  private:
    std::vector<double> weights_;
    double intercept_ = 0.0;
};

} // namespace boreas
