/**
 * @file
 * The 78-attribute feature schema (Sec. IV-B).
 *
 * A feature vector is the 76 microarchitectural counters of one telemetry
 * interval, followed by temperature_sensor_data (the delayed reading of
 * the deployed sensor) and the frequency commanded for the predicted
 * window. The commanded frequency is the model's action input: it is what
 * lets the controller query "what would severity be at 250 MHz higher?"
 * (Sec. V-A). Consistent with the paper — where frequency did not make
 * the top-20 gain list because temperature dominates — its learned
 * importance is small, but it must be present for the what-if query.
 */

#pragma once

#include <string>
#include <vector>

#include "arch/counters.hh"
#include "common/types.hh"

namespace boreas
{

/** Index of temperature_sensor_data in the full schema. */
constexpr size_t kTempFeatureIndex = kNumCounters;
/** Index of the commanded frequency in the full schema. */
constexpr size_t kFreqFeatureIndex = kNumCounters + 1;
/** Total width of the full schema (the paper's 78 attributes). */
constexpr size_t kNumFullFeatures = kNumCounters + 2;

/** Names of all 78 attributes, in dataset column order. */
const std::vector<std::string> &fullFeatureSchema();

/** Build a full feature vector from one interval's telemetry. */
std::vector<double> assembleFeatures(const CounterSet &counters,
                                     Celsius temp_reading,
                                     GHz commanded_freq);

/**
 * The paper's Table IV top-20 attributes (most important last, matching
 * the table's "sorted from the least to most important" presentation).
 */
const std::vector<std::string> &paperTop20Features();

/**
 * The deployed model's feature set: the Table IV top-20 plus the
 * commanded frequency (the controller's action input).
 */
const std::vector<std::string> &deployedFeatureNames();

/**
 * Map feature names to their indices in the full schema; panics on an
 * unknown name.
 */
std::vector<size_t> featureIndicesOf(
    const std::vector<std::string> &names);

} // namespace boreas
