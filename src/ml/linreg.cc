#include "ml/linreg.hh"

#include <istream>
#include <ostream>

#include "common/iofmt.hh"
#include "common/logging.hh"
#include "common/matrix.hh"

namespace boreas
{

void
LinearRegression::fit(const Dataset &data, double ridge)
{
    std::vector<double> x;
    x.reserve(data.numRows() * data.numFeatures());
    for (size_t r = 0; r < data.numRows(); ++r)
        x.insert(x.end(), data.row(r), data.row(r) + data.numFeatures());
    fit(x, data.numFeatures(), data.targets(), ridge);
}

void
LinearRegression::fit(const std::vector<double> &x_rowmajor,
                      size_t num_features, const std::vector<double> &y,
                      double ridge)
{
    const size_t n = y.size();
    boreas_assert(n > 0 && num_features > 0, "empty fit data");
    boreas_assert(x_rowmajor.size() == n * num_features,
                  "X size mismatch");

    // Augment with an intercept column: solve (A^T A + ridge I) w = A^T y
    // where A = [X | 1].
    const size_t d = num_features + 1;
    Matrix ata(d, d);
    std::vector<double> aty(d, 0.0);
    for (size_t r = 0; r < n; ++r) {
        const double *row = x_rowmajor.data() + r * num_features;
        for (size_t i = 0; i < num_features; ++i) {
            for (size_t j = i; j < num_features; ++j)
                ata.at(i, j) += row[i] * row[j];
            ata.at(i, num_features) += row[i];
            aty[i] += row[i] * y[r];
        }
        ata.at(num_features, num_features) += 1.0;
        aty[num_features] += y[r];
    }
    // Mirror the upper triangle and apply the ridge (not the intercept).
    for (size_t i = 0; i < d; ++i)
        for (size_t j = i + 1; j < d; ++j)
            ata.at(j, i) = ata.at(i, j);
    for (size_t i = 0; i < num_features; ++i)
        ata.at(i, i) += ridge;

    const std::vector<double> w = Matrix::solve(ata, aty);
    weights_.assign(w.begin(), w.begin() + num_features);
    intercept_ = w[num_features];
}

double
LinearRegression::predict(const double *x) const
{
    double acc = intercept_;
    for (size_t i = 0; i < weights_.size(); ++i)
        acc += weights_[i] * x[i];
    return acc;
}

double
LinearRegression::predict(const std::vector<double> &x) const
{
    boreas_assert(x.size() == weights_.size(),
                  "feature size %zu != %zu", x.size(), weights_.size());
    return predict(x.data());
}

double
LinearRegression::mse(const Dataset &data) const
{
    boreas_assert(data.numFeatures() == weights_.size() &&
                  data.numRows() > 0, "bad eval dataset");
    double acc = 0.0;
    for (size_t r = 0; r < data.numRows(); ++r) {
        const double d = predict(data.row(r)) - data.y(r);
        acc += d * d;
    }
    return acc / static_cast<double>(data.numRows());
}

void
LinearRegression::save(std::ostream &os) const
{
    ScopedStreamPrecision precision(os);
    os << "boreas-linreg 1\n";
    os << weights_.size() << " " << intercept_ << "\n";
    for (double w : weights_)
        os << w << "\n";
}

void
LinearRegression::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    is >> magic >> version;
    boreas_assert(magic == "boreas-linreg" && version == 1,
                  "bad linreg header");
    size_t n = 0;
    is >> n >> intercept_;
    weights_.assign(n, 0.0);
    for (double &w : weights_)
        is >> w;
    boreas_assert(is.good() || is.eof(), "truncated linreg model");
}

} // namespace boreas
