/**
 * @file
 * Principal Component Analysis.
 *
 * The Cochran-Reda baseline (Sec. IV-C) reduces raw performance-counter
 * dimensionality with PCA before phase clustering; this is a standard
 * covariance-eigendecomposition implementation (Jacobi) with
 * standardization of inputs.
 */

#pragma once

#include <iosfwd>
#include <vector>

#include "common/matrix.hh"

namespace boreas
{

/** PCA projector fit on row-major data. */
class PCA
{
  public:
    /**
     * Fit on n rows of d standardized features, keeping k components.
     * Features with zero variance are kept but contribute nothing.
     */
    void fit(const std::vector<double> &x_rowmajor, size_t num_features,
             size_t num_components);

    bool trained() const { return components_.rows() > 0; }
    size_t numComponents() const { return components_.rows(); }
    size_t numFeatures() const { return mean_.size(); }

    /** Fraction of total variance captured by each kept component. */
    const std::vector<double> &explainedVariance() const
    {
        return explained_;
    }

    /** Project one row into component space. */
    std::vector<double> transform(const double *x) const;
    std::vector<double> transform(const std::vector<double> &x) const;

    /** Project many rows (row-major in, row-major out). */
    std::vector<double> transformAll(
        const std::vector<double> &x_rowmajor) const;

    /** Serialize to a line-oriented text format. */
    void save(std::ostream &os) const;

    /** Deserialize; panics on malformed input. */
    void load(std::istream &is);

  private:
    std::vector<double> mean_;
    std::vector<double> scale_; ///< per-feature std (1 if degenerate)
    Matrix components_;         ///< k x d, rows are components
    std::vector<double> explained_;
};

} // namespace boreas
