#include "ml/cv.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace boreas
{

CVResult
leaveOneGroupOutCV(const Dataset &data, const GBTParams &params,
                   int max_folds)
{
    const std::vector<int> groups = data.distinctGroups();
    boreas_assert(groups.size() >= 2, "need >= 2 groups for LOOCV");

    int folds = static_cast<int>(groups.size());
    if (max_folds > 0)
        folds = std::min(folds, max_folds);

    CVResult result;
    for (int k = 0; k < folds; ++k) {
        const std::vector<int> held{groups[k]};
        const Dataset train = data.selectGroups(held, /*invert=*/true);
        const Dataset valid = data.selectGroups(held);
        if (train.numRows() == 0 || valid.numRows() == 0)
            continue;
        GBTRegressor model;
        model.train(train, params);
        result.foldMse.push_back(model.mse(valid));
    }
    boreas_assert(!result.foldMse.empty(), "no usable CV folds");
    result.meanMse = mean(result.foldMse);
    result.stdMse = stddev(result.foldMse);
    return result;
}

size_t
selectBestEntry(const std::vector<GridSearchEntry> &entries, double tol)
{
    boreas_assert(!entries.empty(), "empty grid-search result");
    // Worst-case GBT node count; the "smaller model" tie-break level.
    const auto size = [](const GBTParams &p) {
        return static_cast<long>(p.nEstimators) *
            ((1L << (p.maxDepth + 1)) - 1);
    };
    // Every comparison level is tolerance-based: exact float equality
    // would make the winner depend on bit-level noise in the fold MSEs
    // (e.g. a different summation order at another thread count), while
    // a one-sided `<` on stdMse silently skipped the model-size breaker
    // for near-equal variances. "Tied" means within tol at this level;
    // the incumbent (lower index) wins unless the candidate is better
    // by more than tol at some level.
    size_t best = 0;
    for (size_t i = 1; i < entries.size(); ++i) {
        const CVResult &cand = entries[i].cv;
        const CVResult &top = entries[best].cv;
        if (cand.meanMse < top.meanMse - tol) {
            best = i;
        } else if (std::fabs(cand.meanMse - top.meanMse) <= tol) {
            if (cand.stdMse < top.stdMse - tol) {
                best = i;
            } else if (std::fabs(cand.stdMse - top.stdMse) <= tol &&
                       size(entries[i].params) <
                           size(entries[best].params)) {
                best = i;
            }
        }
    }
    return best;
}

GridSearchResult
gridSearchCV(const Dataset &data, const std::vector<GBTParams> &grid,
             int max_folds)
{
    boreas_assert(!grid.empty(), "empty parameter grid");
    GridSearchResult out;
    for (const auto &params : grid)
        out.entries.push_back({params,
                               leaveOneGroupOutCV(data, params,
                                                  max_folds)});
    out.bestIndex = selectBestEntry(out.entries);
    return out;
}

} // namespace boreas
