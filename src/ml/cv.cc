#include "ml/cv.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace boreas
{

CVResult
leaveOneGroupOutCV(const Dataset &data, const GBTParams &params,
                   int max_folds)
{
    const std::vector<int> groups = data.distinctGroups();
    boreas_assert(groups.size() >= 2, "need >= 2 groups for LOOCV");

    int folds = static_cast<int>(groups.size());
    if (max_folds > 0)
        folds = std::min(folds, max_folds);

    CVResult result;
    for (int k = 0; k < folds; ++k) {
        const std::vector<int> held{groups[k]};
        const Dataset train = data.selectGroups(held, /*invert=*/true);
        const Dataset valid = data.selectGroups(held);
        if (train.numRows() == 0 || valid.numRows() == 0)
            continue;
        GBTRegressor model;
        model.train(train, params);
        result.foldMse.push_back(model.mse(valid));
    }
    boreas_assert(!result.foldMse.empty(), "no usable CV folds");
    result.meanMse = mean(result.foldMse);
    result.stdMse = stddev(result.foldMse);
    return result;
}

GridSearchResult
gridSearchCV(const Dataset &data, const std::vector<GBTParams> &grid,
             int max_folds)
{
    boreas_assert(!grid.empty(), "empty parameter grid");
    GridSearchResult out;
    for (const auto &params : grid)
        out.entries.push_back({params,
                               leaveOneGroupOutCV(data, params,
                                                  max_folds)});

    out.bestIndex = 0;
    for (size_t i = 1; i < out.entries.size(); ++i) {
        const auto &cand = out.entries[i];
        const auto &best = out.entries[out.bestIndex];
        const double cm = cand.cv.meanMse;
        const double bm = best.cv.meanMse;
        if (cm < bm - 1e-12) {
            out.bestIndex = i;
        } else if (std::fabs(cm - bm) <= 1e-12) {
            // Tie: prefer lower variance, then the smaller model.
            const auto size = [](const GBTParams &p) {
                return static_cast<long>(p.nEstimators) *
                    ((1L << (p.maxDepth + 1)) - 1);
            };
            if (cand.cv.stdMse < best.cv.stdMse ||
                (cand.cv.stdMse == best.cv.stdMse &&
                 size(cand.params) < size(best.params))) {
                out.bestIndex = i;
            }
        }
    }
    return out;
}

} // namespace boreas
