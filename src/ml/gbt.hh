/**
 * @file
 * Gradient Boosted Trees regression, XGBoost-style (Sec. IV-A).
 *
 * Squared-error objective: per boosting round the gradient of row i is
 * (pred_i - y_i) and the hessian is 1. Trees are grown level-wise to
 * max_depth using histogram-based split finding (quantile-binned
 * features, 256 bins) and the XGBoost gain formula
 *
 *   gain = 1/2 [ GL^2/(HL+lambda) + GR^2/(HR+lambda)
 *                - (GL+GR)^2/(HL+HR+lambda) ] - gamma
 *
 * with leaf weight -G/(H+lambda). alpha (the paper's name for the
 * learning rate), gamma, max_depth and n_estimators match Table II.
 *
 * The class also exposes what the paper's overhead analysis needs
 * (Sec. V-E): gain-based feature importance, serialized model size in
 * bytes assuming full trees of 32-bit values, and the comparison/add
 * operation count of one serial prediction.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/dataset.hh"

namespace boreas
{

/** Hyperparameters (defaults = the paper's Table II model). */
struct GBTParams
{
    double learningRate = 0.3;  ///< "alpha" in Table II
    double gamma = 0.0;         ///< min loss reduction to split
    int maxDepth = 3;
    int nEstimators = 223;
    double lambda = 1.0;        ///< L2 regularization on leaf weights
    double minChildWeight = 1.0;///< min hessian sum per child
    int maxBins = 256;
    double subsample = 1.0;     ///< row sampling per tree
    uint64_t seed = 1;
};

/** One node of a regression tree (leaf iff feature < 0). */
struct GBTNode
{
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;   ///< leaf weight
    double gain = 0.0;    ///< split gain (importance accounting)
};

/** One regression tree. */
struct GBTTree
{
    std::vector<GBTNode> nodes;

    double predict(const double *x) const;
    int depth() const;
};

/** The boosted ensemble. */
class GBTRegressor
{
  public:
    GBTRegressor() = default;

    /** Fit on a dataset. Re-entrant: discards any previous model. */
    void train(const Dataset &data, const GBTParams &params);

    bool trained() const { return !trees_.empty(); }
    const GBTParams &params() const { return params_; }
    size_t numTrees() const { return trees_.size(); }
    double basePrediction() const { return base_; }
    const std::vector<GBTTree> &trees() const { return trees_; }

    /**
     * Predict one row (pointer to numFeatures() doubles) by walking
     * the explicit child links. This is the reference path the flat
     * engine (ml/gbt_flat.hh) is differential-tested against; batched
     * and hot-loop callers should compile a FlatGBT instead.
     */
    double predict(const double *x) const;
    double predict(const std::vector<double> &x) const;

    /** Predict every row of a dataset (must share the feature order).
     *  Routed through a FlatGBT compiled on the fly. */
    std::vector<double> predictAll(const Dataset &data) const;

    /** Mean squared error on a dataset. */
    double mse(const Dataset &data) const;

    /**
     * Normalized gain per feature (sums to 1): the importance measure
     * behind Table IV and the feature-selection study (Sec. IV-B).
     */
    std::vector<double> featureImportance() const;

    size_t numFeatures() const { return numFeatures_; }

    /**
     * Model weight footprint in bytes, counting full trees of depth
     * max_depth with a 32-bit value per node (the paper's Sec. V-E
     * accounting, which yields < 14 KB for the 223x depth-3 model).
     */
    size_t modelBytes() const;

    /** Comparisons for one worst-case serial prediction (trees*depth). */
    size_t comparisonsPerPrediction() const;

    /** Additions for one prediction (trees - 1, plus the base). */
    size_t additionsPerPrediction() const;

    /** Serialize to a simple line-oriented text format. */
    void save(std::ostream &os) const;

    /** Deserialize; panics with a clean error on malformed input
     *  (counts and node indices are validated before use, so a
     *  corrupt file cannot trigger a giant allocation or leave a
     *  model whose predict() reads out of bounds). */
    void load(std::istream &is);

  private:
    GBTParams params_;
    double base_ = 0.0;
    size_t numFeatures_ = 0;
    std::vector<GBTTree> trees_;
};

} // namespace boreas
