#include "ml/feature_schema.hh"

#include "common/logging.hh"

namespace boreas
{

const std::vector<std::string> &
fullFeatureSchema()
{
    static const std::vector<std::string> schema = [] {
        std::vector<std::string> names;
        names.reserve(kNumFullFeatures);
        for (size_t i = 0; i < kNumCounters; ++i)
            names.push_back(counterName(static_cast<Counter>(i)));
        names.push_back("temperature_sensor_data");
        names.push_back("frequency");
        return names;
    }();
    return schema;
}

std::vector<double>
assembleFeatures(const CounterSet &counters, Celsius temp_reading,
                 GHz commanded_freq)
{
    std::vector<double> x;
    x.reserve(kNumFullFeatures);
    x.insert(x.end(), counters.values.begin(), counters.values.end());
    x.push_back(temp_reading);
    x.push_back(commanded_freq);
    return x;
}

const std::vector<std::string> &
paperTop20Features()
{
    // Table IV, least to most important.
    static const std::vector<std::string> top20 = {
        "dcache_write_accesses",
        "FPU_cdb_duty_cycle",
        "IFU_duty_cycle",
        "LSU_duty_cycle",
        "branch_mispredictions",
        "MUL_cdb_duty_cycle",
        "cdb_fpu_accesses",
        "dcache_read_misses",
        "BTB_read_accesses",
        "itlb_total_misses",
        "dtlb_total_accesses",
        "committed_int_instructions",
        "icache_read_accesses",
        "busy_cycles",
        "total_cycles",
        "ROB_reads",
        "dcache_read_accesses",
        "committed_instructions",
        "cdb_alu_accesses",
        "temperature_sensor_data",
    };
    return top20;
}

const std::vector<std::string> &
deployedFeatureNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v = paperTop20Features();
        v.push_back("frequency");
        return v;
    }();
    return names;
}

std::vector<size_t>
featureIndicesOf(const std::vector<std::string> &names)
{
    const auto &schema = fullFeatureSchema();
    std::vector<size_t> out;
    out.reserve(names.size());
    for (const auto &name : names) {
        bool found = false;
        for (size_t i = 0; i < schema.size(); ++i) {
            if (schema[i] == name) {
                out.push_back(i);
                found = true;
                break;
            }
        }
        boreas_assert(found, "unknown feature '%s'", name.c_str());
    }
    return out;
}

} // namespace boreas
