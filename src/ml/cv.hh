/**
 * @file
 * Model selection: leave-one-application-out cross-validation and
 * grid search (Sec. IV-A "Grid search CV").
 *
 * The paper's CV is a modified LOOCV where the unit held out is an
 * *application* (a dataset group), never individual rows — this keeps the
 * validation honest for the deployment setting, where the model must
 * generalize to workloads it has never seen.
 */

#pragma once

#include <vector>

#include "ml/dataset.hh"
#include "ml/gbt.hh"

namespace boreas
{

/** Aggregate result of one cross-validated configuration. */
struct CVResult
{
    double meanMse = 0.0;
    double stdMse = 0.0;
    std::vector<double> foldMse; ///< per held-out application
};

/**
 * Leave-one-group-out cross-validation of a GBT configuration.
 *
 * @param data the training pool (groups = applications)
 * @param params the configuration under evaluation
 * @param max_folds cap on folds for cheap sweeps; <= 0 means all groups
 */
CVResult leaveOneGroupOutCV(const Dataset &data, const GBTParams &params,
                            int max_folds = -1);

/** One grid-search entry: configuration plus its CV score. */
struct GridSearchEntry
{
    GBTParams params;
    CVResult cv;
};

/** Grid-search outcome (entries in evaluation order). */
struct GridSearchResult
{
    std::vector<GridSearchEntry> entries;
    size_t bestIndex = 0;

    const GBTParams &best() const { return entries[bestIndex].params; }
    double bestMse() const { return entries[bestIndex].cv.meanMse; }
};

/**
 * Pick the winning entry deterministically. Scores within `tol` of each
 * other count as tied at every comparison level: lowest mean MSE, then
 * lowest std MSE, then the smaller model (fewer total tree nodes), then
 * the lower index. Exposed separately from gridSearchCV so the
 * tie-breaking contract is unit-testable without training models.
 */
size_t selectBestEntry(const std::vector<GridSearchEntry> &entries,
                       double tol = 1e-12);

/**
 * Cross-validate every configuration in the grid and pick the one with
 * the lowest mean MSE (ties broken toward lower std, then smaller model,
 * then lower index; see selectBestEntry).
 */
GridSearchResult gridSearchCV(const Dataset &data,
                              const std::vector<GBTParams> &grid,
                              int max_folds = -1);

} // namespace boreas
