/**
 * @file
 * Tabular dataset used to train and evaluate the severity predictors.
 *
 * Rows are telemetry instances (one per 80 us step), columns are named
 * features, the target is the next control interval's max severity, and
 * each row carries a group id (the workload it came from). Group ids are
 * what enforce the paper's split discipline: a workload's instances are
 * exclusive to either the train or the test side, and cross-validation is
 * leave-one-application-out (Sec. IV-A).
 */

#pragma once

#include <string>
#include <vector>

namespace boreas
{

/** Feature matrix + target + group labels. */
class Dataset
{
  public:
    Dataset() = default;
    explicit Dataset(std::vector<std::string> feature_names);

    const std::vector<std::string> &featureNames() const
    {
        return featureNames_;
    }
    size_t numFeatures() const { return featureNames_.size(); }
    size_t numRows() const { return targets_.size(); }

    /** Append one instance. */
    void addRow(const std::vector<double> &features, double target,
                int group);

    /** Append every row of another dataset (schemas must match). Used
     *  to merge per-task shards of a parallel generation pass in
     *  deterministic task order. */
    void append(const Dataset &other);

    double x(size_t row, size_t feature) const
    {
        return features_[row * numFeatures() + feature];
    }
    double y(size_t row) const { return targets_[row]; }
    int group(size_t row) const { return groups_[row]; }

    /** Contiguous feature row (numFeatures values). */
    const double *row(size_t r) const
    {
        return features_.data() + r * numFeatures();
    }

    const std::vector<double> &targets() const { return targets_; }

    /** Distinct group ids in first-appearance order. */
    std::vector<int> distinctGroups() const;

    /** Rows whose group is (or is not) in the given set. */
    Dataset selectGroups(const std::vector<int> &groups,
                         bool invert = false) const;

    /** Column subset (indices into the current feature order). */
    Dataset selectFeatures(const std::vector<size_t> &indices) const;

    /** Index of a feature by name; -1 if absent. */
    int featureIndex(const std::string &name) const;

    /** Mean of the target column (the GBT base prediction). */
    double targetMean() const;

  private:
    std::vector<std::string> featureNames_;
    std::vector<double> features_; ///< row-major
    std::vector<double> targets_;
    std::vector<int> groups_;
};

} // namespace boreas
